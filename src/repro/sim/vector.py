"""Numpy-vectorized batch engine for the simulation hot paths.

``CacheHierarchy.access_batch`` and ``MemoryController.access_run`` spend
most of their time in per-element Python dispatch: dict probes, bound
method calls, and result-object construction for every simulated access.
At channel-sweep scale (ROADMAP item 2) that interpreter cost is the
throughput ceiling.  This module replaces the *interior* of those loops
with array passes while preserving the repo's hard invariant: the vector
backend is **bit-identical** to the reference scalar path — same
latencies, same statistics, same replacement/row-buffer state, snapshot
for snapshot.

Design: classify, bulk-commit, fall back.

- **Cache side** (:func:`access_batch_vector`): set indices and tags for
  a whole chunk are computed with int64 array arithmetic and resolved
  against the L1's numpy tag mirror
  (:meth:`repro.cache.cache.Cache.tag_matrix`) in one pass.  Runs of
  proven L1 hits commit in bulk — replacement metadata through the
  policies' bulk-update rules
  (:meth:`~repro.cache.replacement.ReplacementPolicy.on_hit_run`),
  counters as single ``+= k`` increments, latencies in closed form.
  Anything the classifier cannot prove an L1 hit (L2/LLC hits, DRAM
  misses, demoted elements) drops to an inline copy of the reference
  scalar body, which walks the controller, prefetchers, and fills one
  element at a time exactly as ``access_batch`` does.
- **Staleness is handled by demotion, never by trusting the mirror**: a
  chunk is classified once, and every event that can remove a line from
  L1 (an L1 fill eviction, an inclusive-LLC back-invalidation — reported
  through the hierarchy's removal sink) demotes all not-yet-processed
  elements on that line to the scalar path.  Demotion is always safe:
  the scalar path re-checks everything; the only unsafe direction would
  be trusting a stale "hit", which never happens.
- **Cache miss path** (:func:`_commit_miss_run`): when the prefetchers
  are off, a run of proven *full misses* (absent from L1, L2, and LLC,
  first occurrence of its line in the chunk) descends the hierarchy as
  one planned span.  On an all-clean hierarchy under LRU/SRRIP the
  whole span commits in bulk (:func:`_commit_miss_bulk`): a *pure* LLC
  fill plan (:func:`_plan_llc_fills`) resolves every victim way first —
  closed forms cover the common regimes (fills landing on invalid ways,
  full sets taking one fill each, whole-set turnovers, LRU eviction
  cycles) as array passes, the rest replays per group — then a
  vectorized membership check proves no planned eviction needs an
  inclusive back-invalidation (a stale positive merely falls back; the
  plan mutated nothing), and only then do the grouped apply passes land
  LLC, L2, and L1 fills (:func:`_apply_llc_plan`,
  :func:`_commit_upper_fills`), the DRAM chain commits as one span
  (:func:`_commit_dram_span`), and statistics and latencies are added
  as arrays.  Runs the bulk preconditions reject — dirty lines
  anywhere, writes, random replacement — use the per-element fallback
  loop with lean inlined fill bodies; events neither path can
  represent (a dirty write-back leaving the LLC, a refresh window or
  open-row-timeout boundary) *cut* the span: the clean prefix commits
  exactly and the next element re-enters classification.
- **DRAM side** (:func:`controller_run_vector`): a back-to-back run
  decodes every address with
  :meth:`~repro.dram.address.AddressMapping.decode_banks_rows`,
  classifies row hit/empty/conflict per bank with a grouped previous-row
  compare, and derives service starts and finishes as one cumulative
  sum.  Closed-row policy and the constant-time defense keep the
  reference ``controller.access`` path (so every PR 3 sanitizer
  invariant holds); refresh windows, partition boundaries, and open-row
  timeouts *split* runs — the clean prefix commits in bulk and the
  boundary element runs through the reference path, which applies the
  refresh window, raises the partition error, or re-times the
  timed-out row exactly.

Backend selection is per call: ``backend=None`` (auto) engages the
vector path when the batch is at least :data:`MIN_VECTOR_BATCH` elements
and no observer is installed; ``backend="scalar"`` forces the reference
loop; ``backend="vector"`` is a hard request — it raises a clear error
when numpy is missing *or* when an observer is attached (observers must
see per-element events in order; auto silently falls back instead).
``REPRO_NO_VECTOR=1`` is the global kill switch, and ``REPRO_SANITIZE``
also forces scalar so sanitized runs always exercise the reference
event stream — both silently, for explicit requests too, so a
sanitized or kill-switched CI run exercises the same call sites.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

from repro.cache.replacement import LRUPolicy, SRRIPPolicy
from repro.obs import sanitize_requested

try:  # pragma: no cover - import outcome depends on the environment
    import numpy as np

    _NUMPY_ERROR: Optional[str] = None
    _version = tuple(int(part) for part in np.__version__.split(".")[:2])
    if _version < (1, 24):
        _NUMPY_ERROR = (
            f"repro.sim.vector needs numpy>=1.24 for stable int64 batch "
            f"semantics; found numpy {np.__version__}. Upgrade with "
            f"`pip install 'numpy>=1.24'`, or set REPRO_NO_VECTOR=1 to "
            f"run the scalar backend only."
        )
        np = None  # type: ignore[assignment]
except ImportError:
    np = None  # type: ignore[assignment]
    _NUMPY_ERROR = (
        "repro.sim.vector needs numpy (declared in pyproject.toml) but it "
        "is not importable. Install it with `pip install 'numpy>=1.24'`, "
        "or stay on the scalar backend (backend='scalar', or set "
        "REPRO_NO_VECTOR=1 to silence vector-backend requests)."
    )

#: Auto mode engages the vector engine at this batch length; below it the
#: classification pass costs more than it saves.
MIN_VECTOR_BATCH = 64

#: Batches are classified and processed in chunks of this many elements,
#: bounding demotion scans and keeping the classification close to the
#: state it was computed against.
CHUNK = 8192

#: Below this initial L1-hit fraction a chunk has no bulk hit runs to
#: win.  When the miss engine is *ineligible* (prefetchers live, or a
#: defense/observer on the controller) such a chunk runs the reference
#: scalar loop outright; when it is eligible, only such miss-leaning
#: chunks pay the full-miss classification (L2/LLC gathers plus the
#: first-occurrence scan) — hit-dominated chunks skip it and handle
#: their stray misses through the per-element fallback as before.
MIN_HIT_FRACTION = 0.5

#: With the miss engine eligible, a chunk below MIN_HIT_FRACTION *and*
#: below this full-miss fraction is dominated by mid-level (L2/LLC) hits
#: — neither engine can bulk-commit those, so bail to the scalar loop.
MIN_MISS_FRACTION = 0.25

#: Minimum full-miss run length worth planning as one span; shorter runs
#: go through the inline scalar element path (span setup — fresh tag
#: mirrors, chain classification, victim planning — costs more than it
#: saves below this).
_MIN_MISS_RUN = 64

#: Prefix length for the miss-dominated pre-check: when the miss engine
#: is ineligible and a chunk is at least 8x this long, a prefix this
#: size is classified first and a sub-threshold hit fraction there bails
#: to the scalar loop without paying the full-chunk compare (all-miss
#: streaming sweeps then run within ~1% of the pure scalar path).
_SAMPLE = 256


def numpy_available() -> bool:
    """True when a usable numpy (>= 1.24) imported."""
    return np is not None


def numpy_error() -> Optional[str]:
    """Why numpy is unusable, or ``None`` when it is available."""
    return _NUMPY_ERROR


def require_numpy() -> None:
    """Raise a clear error when the vector backend was explicitly
    requested but numpy is missing or too old."""
    if np is None:
        raise RuntimeError(_NUMPY_ERROR or "numpy unavailable")


def vector_killed() -> bool:
    """True when ``REPRO_NO_VECTOR`` globally disables the vector paths."""
    return os.environ.get("REPRO_NO_VECTOR", "").strip().lower() \
        not in ("", "0", "false", "no", "off")


def resolve_backend(backend: Optional[str], count: int,
                    observer: object) -> str:
    """Pick ``"vector"`` or ``"scalar"`` for one batch call.

    ``backend=None`` (or ``"auto"``) is auto; ``"vector"`` is a hard
    request: it raises a clear error when numpy is missing or an
    observer is attached (observers must see per-element events in
    order — a silent fallback here hid real configuration mistakes).
    The kill switch and ``REPRO_SANITIZE`` still downgrade an explicit
    request silently: both are environment-level "run everything on the
    reference path" directives, and sanitized runs *cause* an observer
    to be attached to every system — raising for it would make
    ``REPRO_SANITIZE=1`` CI unable to execute ``backend="vector"`` call
    sites at all.
    """
    if backend == "auto":
        backend = None
    if backend == "scalar":
        return "scalar"
    if backend == "vector":
        require_numpy()
        if vector_killed() or sanitize_requested():
            return "scalar"
        if observer is not None:
            raise RuntimeError(
                "backend='vector' cannot run with an observer attached: "
                "observers must see per-element events in order, which "
                "the bulk-commit engine does not produce. Detach the "
                "observer (set_observer(None)), pass backend='scalar', "
                "or leave backend unset — auto falls back silently.")
        return "vector"
    if backend is not None:
        raise ValueError(
            f"unknown backend {backend!r}; choose 'scalar', 'vector', "
            f"or 'auto' (None)")
    if (np is None or count < MIN_VECTOR_BATCH or observer is not None
            or vector_killed() or sanitize_requested()):
        return "scalar"
    return "vector"


# ---------------------------------------------------------------------------
# Cache-hierarchy batch engine
# ---------------------------------------------------------------------------


def access_batch_vector(h, core: int, addrs, issued: int, *,
                        is_write: bool = False, pc: Optional[int] = None,
                        requestor: str = "cpu",
                        collect_latencies: bool = False,
                        ) -> Tuple[int, Optional[List[int]]]:
    """Vectorized equivalent of ``CacheHierarchy.access_batch``.

    Returns ``(finish, latencies)``; ``latencies`` is ``None`` unless
    ``collect_latencies`` (the ``probe_batch`` shape).  The dispatcher
    guarantees no observer is attached; the inline scalar body still
    carries the observer hooks as guarded no-ops for defense in depth.
    """
    if not isinstance(addrs, (list, tuple)):
        addrs = list(addrs)
    latencies: Optional[List[int]] = [] if collect_latencies else None
    now = issued
    sink: List[int] = []
    h._l1_removal_sink = sink
    try:
        for start in range(0, len(addrs), CHUNK):
            chunk = addrs[start:start + CHUNK]
            now = _run_chunk(h, core, chunk, now, is_write, pc, requestor,
                             latencies, sink)
            sink.clear()
    finally:
        h._l1_removal_sink = None
    return now, latencies


def _run_chunk(h, core: int, addrs, now: int, is_write: bool,
               pc: Optional[int], requestor: str,
               latencies: Optional[List[int]], sink: List[int]) -> int:
    """Classify one chunk against the current L1 state and process it."""
    l1 = h.l1[core]
    n = len(addrs)
    line_bytes = l1._line_bytes
    addrs_np = np.asarray(addrs, dtype=np.int64)
    lines = _div(addrs_np, line_bytes)
    sets = _mod(lines, l1._num_sets)
    tags = l1.tag_matrix()
    lean = bool(h._pf_observe) or bool(h._inflight_fills)
    controller = h.controller
    # The miss engine needs the easy regime end to end: no prefetchers
    # (they evolve per demand element), no in-flight fills (per-element
    # stall pops), and a controller without per-request arbitration the
    # chain cannot represent (CRP/CTD/partitions/observer; refresh and
    # the open-row timeout are handled by splitting runs).
    miss_ok = (not lean and not controller._close_after
               and not controller._constant_time
               and not controller._partition and controller._obs is None)
    if not miss_ok and n >= 8 * _SAMPLE:
        # Cheap pre-check: classify a small prefix first so miss-dominated
        # chunks (streaming sweeps) skip the full-chunk compare and go
        # straight to the reference loop.  The prefix is only a heuristic
        # — the authoritative per-element classification below decides
        # what actually gets bulk-committed.
        head = tags[sets[:_SAMPLE]] == lines[:_SAMPLE, None]
        if float(head.any(axis=1).mean()) < MIN_HIT_FRACTION:
            return _scalar_span(h, core, addrs, now, is_write, pc,
                                requestor, latencies, sink)
    match = tags[sets] == lines[:, None]
    hit = match.any(axis=1)
    miss_l = None
    if float(hit.mean()) < MIN_HIT_FRACTION:
        if not miss_ok:
            # Miss-dominated chunk, miss engine ineligible — reference
            # loop.
            return _scalar_span(h, core, addrs, now, is_write, pc,
                                requestor, latencies, sink)
        # Full-miss classification: absent from L1 (above), L2, and LLC,
        # and the first occurrence of its line in the chunk (a repeat
        # may have been filled by an earlier element).  Mid-chunk events
        # cannot invalidate a True entry: lines only enter the hierarchy
        # as chunk lines (first-occurrence-guarded) or as dirty-victim
        # refills, which were resident somewhere at classification time
        # and therefore never classified full-miss.  Hit-dominated
        # chunks skip all of this: their stray misses run the scalar
        # fallback as before, and the L2/LLC gathers they would never
        # use measurably tax the bulk hit path.
        l2 = h.l2[core]
        llc = h.llc
        l2_hit = (l2.tag_matrix()[_mod(lines, l2._num_sets)]
                  == lines[:, None]).any(axis=1)
        llc_hit = (llc.tag_matrix()[_mod(lines, llc._num_sets)]
                   == lines[:, None]).any(axis=1)
        first_seen = np.zeros(n, dtype=bool)
        first_seen[np.unique(lines, return_index=True)[1]] = True
        full_miss = ~hit & ~l2_hit & ~llc_hit & first_seen
        if float(full_miss.mean()) < MIN_MISS_FRACTION:
            # Dominated by mid-level hits — neither engine helps.
            return _scalar_span(h, core, addrs, now, is_write, pc,
                                requestor, latencies, sink)
        miss_l = full_miss.tolist()
        # Run boundaries as a sorted index array: an all-miss chunk (the
        # streaming/conflict regime) resolves each span end with one
        # binary search instead of a per-element scan.
        miss_breaks = np.flatnonzero(~full_miss)
    hit_l = hit.tolist()
    if hit.any():
        ways = match.argmax(axis=1)
        sets_l = sets.tolist()
        ways_l = ways.tolist()
    else:
        # No hit commits will run, so their gathers are dead weight.
        ways = sets_l = ways_l = None
    chunk_lines: Optional[set] = None

    def drain_sink(frm: int) -> None:
        # A line leaving L1 demotes every unprocessed element on it.
        # Over-demotion is always safe (the scalar path re-checks), so
        # LLC back-invalidations demote without asking whether this L1
        # actually held the line.
        nonlocal chunk_lines
        if frm >= n:
            # Nothing left to demote — common after a miss span runs to
            # the end of the chunk, where eviction-heavy spans would
            # otherwise pay one array scan per removed line for nothing.
            sink.clear()
            return
        if chunk_lines is None:
            chunk_lines = set(lines.tolist())
        for removed_addr in sink:
            removed_line = removed_addr // line_bytes
            if removed_line not in chunk_lines:
                continue
            for pos in np.flatnonzero(lines[frm:] == removed_line).tolist():
                hit_l[frm + pos] = False
        sink.clear()

    i = 0
    while i < n:
        if hit_l[i]:
            j = i + 1
            while j < n and hit_l[j]:
                j += 1
            if lean:
                now, i = _commit_hits_lean(h, core, addrs, sets_l, ways_l,
                                           i, j, now, is_write, pc,
                                           requestor, latencies, sink,
                                           drain_sink, hit_l, l1)
            else:
                now = _commit_hits_bulk(h, sets, ways, i, j, now, is_write,
                                        requestor, latencies, l1)
                i = j
        else:
            if miss_l is not None and miss_l[i]:
                b = int(np.searchsorted(miss_breaks, i))
                j = int(miss_breaks[b]) if b < miss_breaks.size else n
                if j - i >= _MIN_MISS_RUN:
                    committed, now = _commit_miss_run(
                        h, core, addrs_np, lines, i, j, now, is_write,
                        requestor, latencies, sink)
                    if committed:
                        i += committed
                        if sink:
                            drain_sink(i)
                        continue
                    # Span could not start (lock/busy window) — one
                    # reference element clears it, then retry the run.
            now = _scalar_element(h, core, addrs[i], now, is_write, pc,
                                  requestor, latencies)
            i += 1
            if sink:
                drain_sink(i)
    return now


def _commit_hits_bulk(h, sets, ways, i: int, j: int, now: int,
                      is_write: bool, requestor: str,
                      latencies: Optional[List[int]], l1) -> int:
    """Commit ``[i, j)`` — all proven L1 hits, prefetchers off, no
    in-flight fills, so every element is a constant-latency hit — with
    array updates equivalent to ``k`` reference iterations."""
    k = j - i
    lat = h._l1_latency
    run_sets = sets[i:j]
    run_ways = ways[i:j]
    l1._policy.on_hit_run(run_sets, run_ways)
    if is_write:
        dirty = l1._dirty
        width = l1._ways
        for flat in np.unique(run_sets * width + run_ways).tolist():
            row = dirty[flat // width]
            if not row[flat % width]:
                row[flat % width] = True
                l1._dirty_lines += 1
    l1.stats.hits += k
    stats = h.stats
    stats.demand_accesses += k
    rs = stats.requestor(requestor)
    if rs.accesses == 0 and rs.clflushes == 0:
        rs.first_seen_cycle = now
    last_issue = now + (k - 1) * lat
    if last_issue > rs.last_seen_cycle:
        rs.last_seen_cycle = last_issue
    rs.accesses += k
    if latencies is not None:
        latencies.extend([lat] * k)
    return now + k * lat


def _commit_hits_lean(h, core: int, addrs, sets_l, ways_l, i: int, j: int,
                      now: int, is_write: bool, pc: Optional[int],
                      requestor: str, latencies: Optional[List[int]],
                      sink: List[int], drain_sink, hit_l, l1,
                      ) -> Tuple[int, int]:
    """Commit proven hits ``[i, j)`` with the prefetchers live.

    Prefetcher state must evolve per element (it feeds on the demand
    stream), so this is a lean per-element loop: replacement, stats, and
    stall bookkeeping inlined, the two prefetcher ``observe`` calls kept
    (inside ``_run_prefetchers``), and the heavyweight issue path only
    when candidates appear.  A prefetch that back-invalidates a line
    demotes the tail; the loop stops early if its own next element was
    demoted.  Returns ``(now, next_index)``.
    """
    stats = h.stats
    rs = stats.requestor(requestor)
    rrpv = l1._rrpv
    policy_on_hit = l1._policy_on_hit
    dirty = l1._dirty
    l1_stats = l1.stats
    lat = h._l1_latency
    inflight = h._inflight_fills
    late_stall = h._late_prefetch_stall
    run_prefetchers = h._run_prefetchers
    virgin = rs.accesses == 0 and rs.clflushes == 0
    idx = i
    while idx < j:
        addr = addrs[idx]
        stall = late_stall(addr, now) if inflight else 0
        s = sets_l[idx]
        w = ways_l[idx]
        if rrpv is not None:
            rrpv[s][w] = 0
        else:
            policy_on_hit(s, w)
        if is_write:
            dirty_row = dirty[s]
            if not dirty_row[w]:
                dirty_row[w] = True
                l1._dirty_lines += 1
        l1_stats.hits += 1
        stats.demand_accesses += 1
        if virgin:
            rs.first_seen_cycle = now
            virgin = False
        if now > rs.last_seen_cycle:
            rs.last_seen_cycle = now
        rs.accesses += 1
        latency = stall + lat
        if latencies is not None:
            latencies.append(latency)
        finish = now + latency
        run_prefetchers(core, addr, pc, finish, requestor)
        now = finish
        idx += 1
        if sink:
            drain_sink(idx)
            if idx < j and not hit_l[idx]:
                break
    return now, idx


def _scalar_span(h, core: int, addrs, now: int, is_write: bool,
                 pc: Optional[int], requestor: str,
                 latencies: Optional[List[int]], sink: List[int]) -> int:
    """Run a whole span through the reference scalar loop.

    The removal sink is detached for the duration: the caller classifies
    its next chunk fresh, so removals inside the span are irrelevant and
    recording them would only queue useless demotion scans.
    """
    h._l1_removal_sink = None
    try:
        if latencies is None:
            return h._access_batch_scalar(core, addrs, now,
                                          is_write=is_write, pc=pc,
                                          requestor=requestor)
        finish, span_lat = h._probe_batch_scalar(core, addrs, now,
                                                 is_write=is_write, pc=pc,
                                                 requestor=requestor)
        latencies.extend(span_lat)
        return finish
    finally:
        h._l1_removal_sink = sink


def _scalar_element(h, core: int, addr: int, now: int, is_write: bool,
                    pc: Optional[int], requestor: str,
                    latencies: Optional[List[int]]) -> int:
    """One element through the reference path — a line-for-line mirror of
    the ``access_batch`` loop body.  The hierarchy's removal sink is
    live, so fills report the L1 lines they displace."""
    h.stats.demand_accesses += 1
    latency = ((h._late_prefetch_stall(addr, now) if h._inflight_fills
                else 0) + h._l1_latency)
    miss = False
    if h.l1[core].access(addr, is_write=is_write):
        pass
    else:
        latency += h._l2_latency
        if h.l2[core].access(addr):
            h._fill_l1(core, addr, is_write)
        else:
            latency += h._llc_latency
            if h.llc.access(addr):
                h._fill_upper(core, addr, is_write)
            else:
                mem = h.controller.access(addr, now + latency,
                                          requestor=requestor,
                                          is_write=is_write)
                finish = mem.finish
                latency = finish - now
                h._fill_all(core, addr, is_write, time=finish,
                            requestor=requestor)
                miss = True
                if h._obs is not None:  # pragma: no cover - gate keeps obs off
                    h._obs.on_cache_miss(core, addr, now, finish, requestor)
    h.stats.observe(requestor, now, miss=miss)
    if latencies is not None:
        latencies.append(latency)
    finish = now + latency
    h._run_prefetchers(core, addr, pc, finish, requestor)
    return finish



def _mod(a, n: int):
    """``a % n`` with the mask fast path for power-of-two ``n``.

    Set counts and line sizes are powers of two in every shipped
    config, and a bitwise AND over a chunk-sized array is several
    times cheaper than the general remainder.
    """
    return a & (n - 1) if n & (n - 1) == 0 else a % n


def _div(a, n: int):
    """``a // n`` for non-negative ``a``, shifting when ``n`` is a
    power of two."""
    return a >> (n.bit_length() - 1) if n & (n - 1) == 0 else a // n


def _set_groups(sets, m: int):
    """Grouped iteration order for a span's per-set fill walkers.

    Returns ``(order_l, starts, ends)``: element positions sorted by set
    (stable, so groups stay in element order) and the ``[start, end)``
    bounds of every same-set group, found with one array compare instead
    of a per-element Python scan.
    """
    order = np.argsort(sets, kind="stable")
    ssets = sets[order]
    cuts = np.flatnonzero(ssets[1:] != ssets[:-1]) + 1
    cuts_l = cuts.tolist()
    return order.tolist(), [0] + cuts_l, cuts_l + [m]


def _scatter_mirror(cache, f_sets, f_ways, f_lines,
                    dedup: bool = True) -> None:
    """Land a span's final ``(set, way, line)`` placements on the numpy
    tag mirror directly.

    A direct scatter is only sound when the mirror is current (building
    or replaying it later would overwrite the scatter with older state),
    so a stale mirror is left for the next wholesale rebuild and queued
    patches fall back to extending the patch log in order.  Duplicate
    ``(set, way)`` placements keep the last occurrence, matching an
    in-order replay; callers that know every placement hit a distinct
    way (an eviction-free span fills only invalid ways) pass
    ``dedup=False`` to skip the sort.
    """
    mirror = cache._np_tags
    if mirror is None or cache._np_stale:
        return
    if cache._np_pending:
        cache._np_pending.extend(zip(f_sets, f_ways, f_lines))
        return
    if not f_sets:
        return
    sa = np.asarray(f_sets, dtype=np.int64)
    wa = np.asarray(f_ways, dtype=np.int64)
    la = np.asarray(f_lines, dtype=np.int64)
    if not dedup:
        mirror[sa, wa] = la
        return
    flat = sa * cache._ways + wa
    _, rev_index = np.unique(flat[::-1], return_index=True)
    sel = flat.size - 1 - rev_index
    mirror[sa[sel], wa[sel]] = la[sel]


def _plan_llc_fills(llc, span_lines, lines_l, m: int):
    """Pure LLC fill plan for ``m`` distinct, absent lines.

    Returns ``(sets_l, ways_l, old_l, rrpv_finals, evictions)``:
    ``ways_l[i]`` is the victim way of fill ``i``; ``old_l[i]`` is the
    line it displaces (``-2`` for an invalid-way fill); ``rrpv_finals``
    is a list of ``(set, final_rrpv_row)`` pairs for SRRIP sets that
    aged mid-plan (unaged sets need only the per-way insert writes the
    apply pass does anyway).  Nothing is mutated — the caller applies
    the plan only once every span-wide precondition holds.

    Exactness relies on the bulk-commit preconditions: the span's lines
    are distinct and absent everywhere, the cache is all-clean, and no
    hit touches it mid-span.  Two SRRIP regimes are planned as pure
    array passes:

    - groups that fit their set's invalid ways (a warming LLC under a
      streaming sweep) take those ways in index order — no aging, no
      eviction, so the victim gather is the whole plan;
    - full sets receiving exactly one fill (the steady state for a
      large LLC) get the closed form of ``Cache.fill``'s victim scan:
      first invalid way, else one-shot aging plus first max-RRPV way.

    The rare remainder — full or nearly-full sets taking several fills
    — replays the fill body per group: max-RRPV ways in index order
    while they last, else on copied rows.  LRU sets are closed-form
    cycles: invalid ways in index order, then valid ways in last-use
    order, then FIFO through the span's own fills (every span fill's
    stamp exceeds every pre-span stamp).
    """
    sets = _mod(span_lines, llc._num_sets)
    sets_l = sets.tolist()
    ways_l = [0] * m
    old_l = [-2] * m
    tags_all = llc._tags
    rrpv_all = llc._rrpv
    mirror = llc.tag_matrix()
    finals: List[tuple] = []
    evictions = 0
    ways = llc._ways
    if rrpv_all is not None:
        max_rrpv = llc._max_rrpv
        insert_rrpv = llc._insert_rrpv
        order = np.argsort(sets, kind="stable")
        ssets = sets[order]
        newgrp = np.empty(m, dtype=bool)
        newgrp[0] = True
        np.not_equal(ssets[1:], ssets[:-1], out=newgrp[1:])
        idx = np.arange(m)
        rank = idx - np.maximum.accumulate(np.where(newgrp, idx, 0))
        group_of = np.cumsum(newgrp) - 1
        grp_sets = ssets[newgrp]
        grp_start = idx[newgrp]
        grp_size = np.diff(np.append(grp_start, m))
        rows_t = mirror[grp_sets]
        invmask = rows_t == -1
        easy_grp = grp_size <= invmask.sum(axis=1)
        easy_el = easy_grp[group_of]
        if bool(easy_el.any()):
            # Invalid ways per set in index order; ``rank`` selects the
            # n-th for the group's n-th fill.  The defaulted ``old_l``
            # of -2 and the apply pass's insert-RRPV writes complete
            # the plan for these elements.
            inv_order = np.argsort(~invmask, axis=1, kind="stable")
            w_el = inv_order[group_of, np.minimum(rank, ways - 1)]
            if bool(easy_el.all()):
                for pos, w in zip(order.tolist(), w_el.tolist()):
                    ways_l[pos] = w
                return sets_l, ways_l, old_l, finals, 0
            for pos, w in zip(order[easy_el].tolist(),
                              w_el[easy_el].tolist()):
                ways_l[pos] = w
        hard = np.flatnonzero(~easy_grp)
        single = hard[grp_size[hard] == 1]
        if single.size:
            # Full sets, one fill each: closed-form victim scan.
            srows = rows_t[single]
            sinv = invmask[single]
            has_inv = sinv.any(axis=1)
            rrpv_rows = np.array(
                [rrpv_all[s] for s in grp_sets[single].tolist()],
                dtype=np.int64)
            step = max_rrpv - rrpv_rows.max(axis=1)
            vict = (rrpv_rows + step[:, None] == max_rrpv).argmax(axis=1)
            chosen = np.where(has_inv, sinv.argmax(axis=1), vict)
            olds = np.where(has_inv, np.int64(-2),
                            srows[np.arange(single.size), vict])
            for pos, w, old in zip(order[grp_start[single]].tolist(),
                                   chosen.tolist(), olds.tolist()):
                ways_l[pos] = w
                old_l[pos] = old
            evictions += int(single.size) - int(np.count_nonzero(has_inv))
            # Aging only fires on a *full* set (an invalid way wins the
            # victim scan before any aging round runs).
            aged = np.flatnonzero((step > 0) & ~has_inv)
            if aged.size:
                aged_rows = rrpv_rows[aged] + step[aged, None]
                for row, s, w in zip(aged_rows.tolist(),
                                     grp_sets[single[aged]].tolist(),
                                     vict[aged].tolist()):
                    row[w] = insert_rrpv
                    finals.append((s, row))
        multi = hard[grp_size[hard] > 1]
        if multi.size:
            order_l = order.tolist()
            for g, i, size in zip(multi.tolist(),
                                  grp_start[multi].tolist(),
                                  grp_size[multi].tolist()):
                j = i + size
                s = sets_l[order_l[i]]
                tgs = tags_all[s]
                row_live = rrpv_all[s]
                if -1 in tgs:
                    # More fills than invalid ways (easy groups were
                    # peeled off above): take the invalid ways in index
                    # order, then replay the rest on copied rows.
                    pass
                elif min(row_live) >= insert_rrpv < max_rrpv:
                    # Full set, RRPVs in {insert..max}: fills never
                    # mint a new max-RRPV way, so as long as current
                    # max-RRPV ways last, victims are exactly those
                    # ways in index order — no row copies.
                    maxed = [w for w in range(ways)
                             if row_live[w] == max_rrpv]
                    if size <= len(maxed):
                        for t in range(i, j):
                            pos = order_l[t]
                            w = maxed[t - i]
                            old_l[pos] = tgs[w]
                            ways_l[pos] = w
                        evictions += size
                        continue
                tgs_c = list(tgs)
                row = list(row_live)
                n_inv = tgs_c.count(-1)
                aged_set = False
                for t in range(i, j):
                    pos = order_l[t]
                    ln = lines_l[pos]
                    if n_inv:
                        w = tgs_c.index(-1)
                        n_inv -= 1
                    else:
                        if max_rrpv in row:
                            w = row.index(max_rrpv)
                        else:
                            step_s = max_rrpv - max(row)
                            row = [r + step_s for r in row]
                            aged_set = True
                            w = row.index(max_rrpv)
                        old_l[pos] = tgs_c[w]
                        evictions += 1
                    tgs_c[w] = ln
                    row[w] = insert_rrpv
                    ways_l[pos] = w
                if aged_set:
                    finals.append((s, row))
        return sets_l, ways_l, old_l, finals, evictions
    last_all = llc._policy._last_use
    order_l, starts, ends = _set_groups(sets, m)
    for i, j in zip(starts, ends):
        s = sets_l[order_l[i]]
        k = j - i
        tgs = tags_all[s]
        n_inv = tgs.count(-1)
        if n_inv == ways:
            cyc = list(range(ways))
        elif n_inv:
            cyc = [w for w in range(ways) if tgs[w] == -1]
            last = last_all[s]
            cyc += sorted((w for w in range(ways) if tgs[w] != -1),
                          key=last.__getitem__)
        else:
            cyc = sorted(range(ways), key=last_all[s].__getitem__)
        for t in range(k):
            pos = order_l[i + t]
            w = cyc[t % ways]
            ways_l[pos] = w
            if t < ways:
                old = tgs[w]
                old_l[pos] = -2 if old < 0 else old
            else:
                old_l[pos] = lines_l[order_l[i + t - ways]]
        evictions += k - n_inv if k > n_inv else 0
    return sets_l, ways_l, old_l, finals, evictions


def _apply_llc_plan(llc, plan, lines_l, m: int) -> None:
    """Apply a :func:`_plan_llc_fills` plan to the live LLC state."""
    sets_l, ways_l, old_l, finals, evictions = plan
    tags_all = llc._tags
    where_all = llc._where
    valid_all = llc._valid
    rrpv_all = llc._rrpv
    if rrpv_all is None:
        policy = llc._policy
        lu = policy._last_use
        stamp = policy._stamp
        for s, w, ln, old in zip(sets_l, ways_l, lines_l, old_l):
            stamp += 1
            wd = where_all[s]
            if old >= 0:
                del wd[old]
            else:
                valid_all[s][w] = True
            tags_all[s][w] = ln
            wd[ln] = w
            lu[s][w] = stamp
        policy._stamp = stamp
    else:
        insert_rrpv = llc._insert_rrpv
        if evictions == 0:
            # Every fill landed on an invalid way (``old_l`` is all -2
            # and no set aged): the displacement branch drops out.
            for s, w, ln in zip(sets_l, ways_l, lines_l):
                valid_all[s][w] = True
                tags_all[s][w] = ln
                where_all[s][ln] = w
                rrpv_all[s][w] = insert_rrpv
        else:
            for s, w, ln, old in zip(sets_l, ways_l, lines_l, old_l):
                wd = where_all[s]
                if old >= 0:
                    del wd[old]
                else:
                    valid_all[s][w] = True
                tags_all[s][w] = ln
                wd[ln] = w
                rrpv_all[s][w] = insert_rrpv
        for s, row in finals:
            rrpv_all[s][:] = row
    # The plan's tag_matrix() call drained the patch log, so the span's
    # placements scatter straight onto the mirror.  An eviction-free
    # span fills pairwise-distinct invalid ways — no dedup pass needed.
    _scatter_mirror(llc, sets_l, ways_l, lines_l, dedup=evictions > 0)
    stats = llc.stats
    stats.misses += m
    stats.fills += m
    stats.evictions += evictions


def _commit_upper_fills(cache, span_lines, lines_l, m: int,
                        want_evicted: bool):
    """Fused plan-and-apply of a full-miss span into an upper cache.

    The LLC needs a pure plan (its evictions gate the whole bulk commit)
    but L1/L2 do not: by the time they fill, the span is committed, so
    each set's fill sequence is planned and applied in a single grouped
    pass.  Returns the list of evicted lines when ``want_evicted`` (L1
    evictions feed the demotion sink); L2 callers pass ``False`` —
    reference ``_fill_all`` discards clean L2 victims silently.

    Closed forms, per set group of ``k`` fills:

    - LRU with ``k >= ways`` (the streaming steady state for a small
      L1): every prior resident and all but the last ``ways`` span
      fills are evicted, and the survivors land via the eviction cycle
      (invalid ways in index order, then valid ways by last use) with
      their element-order stamps — no per-fill bookkeeping.
    - SRRIP on a full set with every RRPV in ``{insert..max}``: fills
      never mint a new max-RRPV way, so victims are exactly the current
      max-RRPV ways in index order; while they last, each fill is three
      list writes and two dict ops.
    - Everything else (cold sets, post-promotion RRPVs, aging): an
      in-place replay of the inlined ``Cache.fill`` body.
    """
    sets = _mod(span_lines, cache._num_sets)
    sets_l = sets.tolist()
    order_l, starts, ends = _set_groups(sets, m)
    tags_all = cache._tags
    where_all = cache._where
    valid_all = cache._valid
    rrpv_all = cache._rrpv
    ways = cache._ways
    evicted: Optional[List[int]] = [] if want_evicted else None
    evictions = 0
    if rrpv_all is None:
        policy = cache._policy
        lu = policy._last_use
        base = policy._stamp
        for i, j in zip(starts, ends):
            s = sets_l[order_l[i]]
            k = j - i
            tgs = tags_all[s]
            wd = where_all[s]
            lurow = lu[s]
            n_inv = tgs.count(-1)
            if k >= ways:
                # Every way turns over: rebuild the set from the last
                # ``ways`` fills instead of replaying all ``k``.
                if n_inv == 0:
                    cyc = sorted(range(ways), key=lurow.__getitem__)
                    if evicted is not None:
                        evicted.extend(tgs)
                else:
                    cyc = [w for w in range(ways) if tgs[w] == -1]
                    if n_inv < ways:
                        cyc += sorted(
                            (w for w in range(ways) if tgs[w] != -1),
                            key=lurow.__getitem__)
                        if evicted is not None:
                            evicted.extend(t for t in tgs if t != -1)
                    valid_all[s][:] = [True] * ways
                evictions += k - n_inv
                if evicted is not None:
                    evicted.extend(
                        [lines_l[p] for p in order_l[i:j - ways]])
                wd.clear()
                for t in range(k - ways, k):
                    pos = order_l[i + t]
                    w = cyc[t % ways]
                    ln = lines_l[pos]
                    tgs[w] = ln
                    wd[ln] = w
                    lurow[w] = base + pos + 1
            else:
                vrow = valid_all[s]
                for t in range(i, j):
                    pos = order_l[t]
                    ln = lines_l[pos]
                    if n_inv:
                        w = tgs.index(-1)
                        n_inv -= 1
                        vrow[w] = True
                    else:
                        w = lurow.index(min(lurow))
                        old = tgs[w]
                        del wd[old]
                        if evicted is not None:
                            evicted.append(old)
                        evictions += 1
                    tgs[w] = ln
                    wd[ln] = w
                    lurow[w] = base + pos + 1
        policy._stamp = base + m
    else:
        max_rrpv = cache._max_rrpv
        insert_rrpv = cache._insert_rrpv
        closed_ok = insert_rrpv < max_rrpv
        for i, j in zip(starts, ends):
            s = sets_l[order_l[i]]
            k = j - i
            tgs = tags_all[s]
            wd = where_all[s]
            row = rrpv_all[s]
            if closed_ok and -1 not in tgs and min(row) >= insert_rrpv:
                if k < ways:
                    maxed = [w for w in range(ways) if row[w] == max_rrpv]
                    if k <= len(maxed):
                        for t in range(i, j):
                            pos = order_l[t]
                            ln = lines_l[pos]
                            w = maxed[t - i]
                            old = tgs[w]
                            del wd[old]
                            if evicted is not None:
                                evicted.append(old)
                            tgs[w] = ln
                            wd[ln] = w
                            row[w] = insert_rrpv
                        evictions += k
                        continue
                elif row.count(row[0]) == ways:
                    # Uniform full set turning completely over (the
                    # conflict-replay steady state: every line inserted
                    # at the same RRPV, none promoted): aging rounds hit
                    # the whole row at once, so victims walk the ways in
                    # pure index order and the set rebuilds from its
                    # last ``ways`` fills, like the LRU rebuild above.
                    if evicted is not None:
                        evicted.extend(tgs)
                        evicted.extend(
                            [lines_l[p] for p in order_l[i:j - ways]])
                    if k == ways:
                        # One full turnover exactly: the survivors are
                        # the whole group in element order, so the set
                        # rebuilds by slice assignment.
                        grp = [lines_l[p] for p in order_l[i:j]]
                        tgs[:] = grp
                        wd.clear()
                        wd.update(zip(grp, range(ways)))
                        row[:] = [insert_rrpv] * ways
                        evictions += ways
                        continue
                    wd.clear()
                    for t in range(k - ways, k):
                        pos = order_l[i + t]
                        w = t % ways
                        ln = lines_l[pos]
                        tgs[w] = ln
                        wd[ln] = w
                    rem = k % ways
                    # Post-rebuild RRPVs: the fills after the last aging
                    # round sit at insert, everything older aged to max.
                    if rem:
                        row[:] = ([insert_rrpv] * rem
                                  + [max_rrpv] * (ways - rem))
                    else:
                        row[:] = [insert_rrpv] * ways
                    evictions += k
                    continue
            n_inv = tgs.count(-1)
            vrow = valid_all[s]
            for t in range(i, j):
                pos = order_l[t]
                ln = lines_l[pos]
                if n_inv:
                    w = tgs.index(-1)
                    n_inv -= 1
                    vrow[w] = True
                else:
                    if max_rrpv in row:
                        w = row.index(max_rrpv)
                    else:
                        step = max_rrpv - max(row)
                        row[:] = [r + step for r in row]
                        w = row.index(max_rrpv)
                    old = tgs[w]
                    del wd[old]
                    if evicted is not None:
                        evicted.append(old)
                    evictions += 1
                tgs[w] = ln
                wd[ln] = w
                row[w] = insert_rrpv
    # Refresh the mirror's touched rows from the final tag lists — far
    # cheaper than the wholesale rebuild the next chunk's classification
    # would otherwise pay.  Only sound on a current mirror; a stale or
    # patch-backed one is left for the normal rebuild/replay path.
    mirror = cache._np_tags
    if (mirror is not None and not cache._np_stale
            and not cache._np_pending):
        touched = [sets_l[order_l[i]] for i in starts]
        mirror[np.asarray(touched, dtype=np.int64)] = np.array(
            [tags_all[s] for s in touched], dtype=np.int64)
    else:
        cache._np_stale = True
    stats = cache.stats
    stats.misses += m
    stats.fills += m
    stats.evictions += evictions
    return evicted


def _commit_miss_bulk(h, l1, l2, llc, controller, span_lines, banks, rows,
                      kinds, finishes, service_starts, m: int, now: int,
                      requestor: str, latencies: Optional[List[int]],
                      sink: List[int]) -> Optional[Tuple[int, int]]:
    """Commit a full-miss span with no per-element Python fill loop.

    Only called when the span provably cannot produce any cut or any
    real upper-cache work: a read-only run, LRU/SRRIP at every level,
    zero dirty lines in L1/L2/LLC (so no victim anywhere can write
    back), and — checked here — no planned LLC eviction resident in any
    upper cache (so every back-invalidation sweep is a no-op in the
    reference loop too; mid-span L1/L2 fills only ever *add* span lines,
    which are part of the membership haystack, and evictions only make
    the check stale-conservative).  Under those preconditions the three
    per-level fill sequences are planned purely (closed-form LRU cycles,
    local SRRIP replays), validated, and applied as flat passes; DRAM
    state, statistics, and latencies commit exactly as the per-element
    span path would.  Returns ``None`` when the membership check fails —
    the caller falls through to the general per-element span.
    """
    line_bytes = l1._line_bytes
    lines_l = span_lines.tolist()
    plan3 = _plan_llc_fills(llc, span_lines, lines_l, m)
    evicted = None
    if plan3[4]:
        old3 = np.asarray(plan3[2], dtype=np.int64)
        evicted = old3[old3 >= 0]
        hay = [c.tag_matrix().ravel() for c in (*h.l1, *h.l2)]
        hay.append(span_lines)
        if bool(np.isin(evicted, np.concatenate(hay)).any()):
            return None
    _apply_llc_plan(llc, plan3, lines_l, m)
    _commit_upper_fills(l2, span_lines, lines_l, m, False)
    evicted1 = _commit_upper_fills(l1, span_lines, lines_l, m, True)
    if evicted is not None and evicted.size:
        sink.extend((evicted * line_bytes).tolist())
    if evicted1:
        sink.extend([ln * line_bytes for ln in evicted1])
    _commit_dram_span(controller, banks, rows, kinds, finishes,
                      service_starts, requestor, False)
    if latencies is not None:
        latencies.extend(np.diff(finishes, prepend=now).tolist())
    h_stats = h.stats
    h_stats.demand_accesses += m
    rs = h_stats.requestor(requestor)
    if rs.accesses == 0 and rs.clflushes == 0:
        rs.first_seen_cycle = now
    last_issue = int(finishes[m - 2]) if m >= 2 else now
    if last_issue > rs.last_seen_cycle:
        rs.last_seen_cycle = last_issue
    rs.accesses += m
    rs.llc_misses += m
    return m, int(finishes[m - 1])


def _commit_miss_run(h, core: int, addrs_np, lines, i: int, j: int,
                     now: int, is_write: bool, requestor: str,
                     latencies: Optional[List[int]],
                     sink: List[int]) -> Tuple[int, int]:
    """Commit ``[i, j)`` — all proven full misses — as one planned span.

    Every element descends L1 -> L2 -> LLC -> DRAM exactly as the
    reference loop would, but the span-invariant work is hoisted into
    arrays: the DRAM chain is classified in bulk (the three cache-probe
    latencies are a constant per-element gap), LLC victims for LRU/SRRIP
    are planned in bulk, and a membership precheck marks evicted lines
    provably absent from every upper cache so their back-invalidation
    sweep can be skipped.  The remaining per-element loop runs inlined
    ``Cache.fill`` bodies (the ``existing`` probes are dropped — span
    lines are absent from all three levels and distinct by
    construction), logging tag patches so the numpy mirrors replay them
    in order.

    Three events *cut* the span — the prefix commits exactly and the
    caller re-enters classification:

    - a dirty write-back leaving the LLC (the DRAM span through the
      current element commits first, then the write-back lands on the
      chain's bank state, in scalar order);
    - a dirty L2 victim refilling the LLC (the real ``llc.fill`` mutates
      LLC replacement state, so later planned victims are stale);
    - an open-row-timeout or refresh boundary in the DRAM chain.

    A dirty *L1* victim refilling L2 does not cut: the refilled line was
    resident above at span start (the precheck already counts it) and
    can never equal a planned LLC eviction, so no planning goes stale.

    Returns ``(elements_committed, finish_time)``; ``(0, now)`` when the
    span cannot start (atomic-lock or bank-busy window, or an immediate
    refresh/timeout boundary) — the caller runs one reference element
    and retries.
    """
    controller = h.controller
    q = controller._queue_cycles
    depth = h._l1_latency + h._l2_latency + h._llc_latency
    span_lines = lines[i:j]
    banks, rows = controller.mapper.decode_banks_rows(addrs_np[i:j])
    device_banks = controller.device.banks
    start0 = now + depth + q
    max_busy = max(device_banks[b].busy_until
                   for b in np.unique(banks).tolist())
    if start0 < controller._locked_until or start0 < max_busy:
        return 0, now
    kinds, lats, finishes, service_starts, clean = _classify_dram_chain(
        controller, banks, rows, now, q + depth)
    upto = min(clean, _refresh_cut(controller, banks, service_starts))
    if upto == 0:
        return 0, now
    m = j - i
    if upto < m:
        m = upto
        span_lines = span_lines[:m]
        banks = banks[:m]
        rows = rows[:m]
        kinds = kinds[:m]
        finishes = finishes[:m]
        service_starts = service_starts[:m]

    l1 = h.l1[core]
    l2 = h.l2[core]
    llc = h.llc
    if (not is_write and m >= _MIN_MISS_RUN
            and llc._dirty_lines == 0 and l2._dirty_lines == 0
            and l1._dirty_lines == 0
            and type(l1._policy) in (LRUPolicy, SRRIPPolicy)
            and type(l2._policy) in (LRUPolicy, SRRIPPolicy)
            and type(llc._policy) in (LRUPolicy, SRRIPPolicy)):
        # All-clean read-only span under bulk-plannable policies: no
        # victim anywhere can write back, so the only remaining cut
        # source is an LLC eviction resident above — which the bulk
        # committer checks itself, falling back here when it trips.
        bulk = _commit_miss_bulk(h, l1, l2, llc, controller, span_lines,
                                 banks, rows, kinds, finishes,
                                 service_starts, m, now, requestor,
                                 latencies, sink)
        if bulk is not None:
            return bulk
    # Fresh mirrors (drains pending patches from preceding scalar work):
    # the LLC's feeds victim planning and the eviction precheck; the
    # upper mirrors feed the precheck only.
    llc_mirror = llc.tag_matrix()
    llc_sets = _mod(span_lines, llc._num_sets)
    uniq_sets, first_idx = np.unique(llc_sets, return_index=True)
    planned = np.full(m, -1, dtype=np.int64)
    policy = llc._policy
    if type(policy) is LRUPolicy or type(policy) is SRRIPPolicy:
        # Pure bulk planning, first occurrence of each set only — later
        # elements on the same set see state the plan didn't, and fall
        # back to the inline victim path (planned = -1).  Other policies
        # (RandomPolicy draws its RNG in victim()) stay inline entirely.
        rows_t = llc_mirror[uniq_sets]
        invmask = rows_t == -1
        invalid_ways = np.where(invmask.any(axis=1),
                                invmask.argmax(axis=1), -1)
        planned[first_idx] = policy.select_victims_bulk(uniq_sets,
                                                        invalid_ways)
    vict_ways = np.where(planned >= 0, planned, 0)
    evict_lines = llc_mirror[llc_sets, vict_ways]
    will_evict = (planned >= 0) & (evict_lines >= 0)
    member = np.zeros(m, dtype=bool)
    if bool(will_evict.any()):
        for cache in (*h.l1, *h.l2):
            c_mirror = cache.tag_matrix()
            member |= (c_mirror[_mod(evict_lines, cache._num_sets)]
                       == evict_lines[:, None]).any(axis=1)
    # Mid-span fills can only make a membership bit stale-*positive*
    # (lines entering upper caches were counted at span start or are
    # span lines, which never equal planned evictions) — a stale
    # positive just runs the full sweep, which is always exact.
    skip_l = (will_evict & ~member).tolist()

    line_bytes = l1._line_bytes
    lines_l = span_lines.tolist()
    l1_sets_l = _mod(span_lines, l1._num_sets).tolist()
    l2_sets_l = (span_lines % l2._num_sets).tolist()
    llc_sets_l = llc_sets.tolist()
    planned_l = planned.tolist()
    finishes_l = finishes.tolist()
    upper_invalidates = h._upper_invalidates
    access_finish = controller.access_finish
    llc_where = llc._where
    llc_tags = llc._tags
    llc_valid = llc._valid
    llc_dirty = llc._dirty
    llc_pending = llc._np_pending
    llc_rrpv = llc._rrpv
    llc_max = llc._max_rrpv
    llc_insert = llc._insert_rrpv
    llc_victim = llc._policy_victim
    llc_on_fill = llc._policy_on_fill
    llc_stats = llc.stats
    llc_fill = llc.fill
    l2_where = l2._where
    l2_tags = l2._tags
    l2_valid = l2._valid
    l2_dirty = l2._dirty
    l2_pending = l2._np_pending
    l2_rrpv = l2._rrpv
    l2_max = l2._max_rrpv
    l2_insert = l2._insert_rrpv
    l2_victim = l2._policy_victim
    l2_on_fill = l2._policy_on_fill
    l2_stats = l2.stats
    l2_fill = l2.fill
    l1_where = l1._where
    l1_tags = l1._tags
    l1_valid = l1._valid
    l1_dirty = l1._dirty
    l1_pending = l1._np_pending
    l1_rrpv = l1._rrpv
    l1_max = l1._max_rrpv
    l1_insert = l1._insert_rrpv
    l1_victim = l1._policy_victim
    l1_on_fill = l1._policy_on_fill
    l1_stats = l1.stats
    memory_writebacks = 0
    dram_done = False
    cut = False
    idx = 0
    while idx < m:
        line = lines_l[idx]
        # --- LLC fill (inlined Cache.fill; line provably absent) ---
        s3 = llc_sets_l[idx]
        valid3 = llc_valid[s3]
        way = planned_l[idx]
        if way < 0:
            if llc_rrpv is not None:
                if False in valid3:
                    way = valid3.index(False)
                else:
                    rrpvs = llc_rrpv[s3]
                    if llc_max not in rrpvs:
                        step = llc_max - max(rrpvs)
                        rrpvs[:] = [r + step for r in rrpvs]
                    way = rrpvs.index(llc_max)
            else:
                way = llc_victim(s3, valid3)
        elif llc_rrpv is not None and valid3[way]:
            # Planned victim of a full SRRIP set: apply the one-shot
            # aging Cache.fill runs before picking this way (the bulk
            # plan computed it without writing).
            rrpvs = llc_rrpv[s3]
            if llc_max not in rrpvs:
                step = llc_max - max(rrpvs)
                rrpvs[:] = [r + step for r in rrpvs]
        tags3 = llc_tags[s3]
        if valid3[way]:
            old_line = tags3[way]
            del llc_where[s3][old_line]
            old_dirty = llc_dirty[s3][way]
            llc_stats.evictions += 1
            if old_dirty:
                llc_stats.writebacks += 1
                llc._dirty_lines -= 1
            ev_addr = old_line * line_bytes
            sink.append(ev_addr)
            wb_dirty = old_dirty
            if not skip_l[idx]:
                for invalidate in upper_invalidates:
                    if invalidate(ev_addr):
                        wb_dirty = True
            if wb_dirty:
                # Dirty write-back leaving the LLC: scalar order is the
                # element's demand access, then the fill-time write-back
                # — so the DRAM span through this element commits first,
                # the write-back lands on the chain's bank state, and
                # the span cuts (later chain times no longer hold).
                k = idx + 1
                _commit_dram_span(controller, banks[:k], rows[:k],
                                  kinds[:k], finishes[:k],
                                  service_starts[:k], requestor, is_write)
                dram_done = True
                access_finish(ev_addr, finishes_l[idx],
                              requestor=requestor, is_write=True)
                memory_writebacks += 1
                cut = True
        tags3[way] = line
        llc_where[s3][line] = way
        valid3[way] = True
        llc_dirty[s3][way] = False
        llc_pending.append((s3, way, line))
        if llc_rrpv is not None:
            llc_rrpv[s3][way] = llc_insert
        else:
            llc_on_fill(s3, way)
        # --- L2 fill ---
        s2 = l2_sets_l[idx]
        valid2 = l2_valid[s2]
        if l2_rrpv is not None:
            if False in valid2:
                w2 = valid2.index(False)
            else:
                rrpvs = l2_rrpv[s2]
                if l2_max not in rrpvs:
                    step = l2_max - max(rrpvs)
                    rrpvs[:] = [r + step for r in rrpvs]
                w2 = rrpvs.index(l2_max)
        else:
            w2 = l2_victim(s2, valid2)
        tags2 = l2_tags[s2]
        if valid2[w2]:
            old2 = tags2[w2]
            del l2_where[s2][old2]
            l2_stats.evictions += 1
            if l2_dirty[s2][w2]:
                l2_stats.writebacks += 1
                l2._dirty_lines -= 1
                # A dirty L2 victim refills the LLC (reference
                # ``_fill_all`` discards the return — any line that
                # refill displaces is silently dropped).  The real call
                # mutates LLC replacement state, so the span's victim
                # plan is stale past this element: cut.
                llc_fill(old2 * line_bytes, dirty=True)
                cut = True
        tags2[w2] = line
        l2_where[s2][line] = w2
        valid2[w2] = True
        l2_dirty[s2][w2] = False
        l2_pending.append((s2, w2, line))
        if l2_rrpv is not None:
            l2_rrpv[s2][w2] = l2_insert
        else:
            l2_on_fill(s2, w2)
        # --- L1 fill ---
        s1 = l1_sets_l[idx]
        valid1 = l1_valid[s1]
        if l1_rrpv is not None:
            if False in valid1:
                w1 = valid1.index(False)
            else:
                rrpvs = l1_rrpv[s1]
                if l1_max not in rrpvs:
                    step = l1_max - max(rrpvs)
                    rrpvs[:] = [r + step for r in rrpvs]
                w1 = rrpvs.index(l1_max)
        else:
            w1 = l1_victim(s1, valid1)
        tags1 = l1_tags[s1]
        if valid1[w1]:
            old1 = tags1[w1]
            del l1_where[s1][old1]
            l1_stats.evictions += 1
            ev1_addr = old1 * line_bytes
            sink.append(ev1_addr)
            if l1_dirty[s1][w1]:
                l1_stats.writebacks += 1
                l1._dirty_lines -= 1
                # Dirty L1 victim refills L2 (return discarded, as in
                # ``_fill_l1``).  No cut needed: only LLC state feeds
                # the span plan, and the refilled line cannot equal a
                # planned LLC eviction.
                l2_fill(ev1_addr, dirty=True)
        tags1[w1] = line
        l1_where[s1][line] = w1
        valid1[w1] = True
        l1_dirty[s1][w1] = is_write
        if is_write:
            l1._dirty_lines += 1
        l1_pending.append((s1, w1, line))
        if l1_rrpv is not None:
            l1_rrpv[s1][w1] = l1_insert
        else:
            l1_on_fill(s1, w1)
        idx += 1
        if cut:
            break
    committed = idx
    if not dram_done:
        _commit_dram_span(controller, banks[:committed], rows[:committed],
                          kinds[:committed], finishes[:committed],
                          service_starts[:committed], requestor, is_write)
    if latencies is not None:
        latencies.extend(np.diff(finishes[:committed],
                                 prepend=now).tolist())
    # Bulk statistics: one miss + one fill per level per element; the
    # real calls along the way (back-invalidations, victim refills, the
    # DRAM span and write-back) counted themselves.
    l1_stats.misses += committed
    l1_stats.fills += committed
    l2_stats.misses += committed
    l2_stats.fills += committed
    llc_stats.misses += committed
    llc_stats.fills += committed
    h_stats = h.stats
    h_stats.demand_accesses += committed
    h_stats.memory_writebacks += memory_writebacks
    rs = h_stats.requestor(requestor)
    if rs.accesses == 0 and rs.clflushes == 0:
        rs.first_seen_cycle = now
    last_issue = finishes_l[committed - 2] if committed >= 2 else now
    if last_issue > rs.last_seen_cycle:
        rs.last_seen_cycle = last_issue
    rs.accesses += committed
    rs.llc_misses += committed
    return committed, finishes_l[committed - 1]


# ---------------------------------------------------------------------------
# DRAM back-to-back run engine
# ---------------------------------------------------------------------------

_KIND_HIT = 0
_KIND_EMPTY = 1
_KIND_CONFLICT = 2


def controller_run_vector(controller, addrs, issued: int, *,
                          requestor: str = "cpu", is_write: bool = False,
                          collect_latencies: bool = False,
                          ) -> Tuple[int, Optional[List[int]]]:
    """Vectorized back-to-back DRAM run (``MemoryController.access_run``).

    Semantics: each access is issued at the previous access's finish.
    The dispatcher guarantees open-row policy, no constant-time defense,
    and no observer.  Every remaining hazard is handled inline by
    *splitting* the run: an atomic-lock window or a bank still busy
    beyond the chain's issue times runs a scalar prefix until the chain
    clears it; open-row-timeout violations and refresh windows commit the
    exact clean prefix and hand the boundary element to the reference
    path (which re-times the timed-out row or applies the refresh
    window); a partitioned bank bounds each span so the violating element
    raises :class:`~repro.dram.controller.PartitionViolationError` from
    the reference path with all prior state committed, exactly as the
    scalar loop would.
    """
    latencies: Optional[List[int]] = [] if collect_latencies else None
    addrs_np = np.asarray(addrs, dtype=np.int64)
    banks_np, rows_np = controller.mapper.decode_banks_rows(addrs_np)
    q = controller._queue_cycles
    device_banks = controller.device.banks
    now = issued
    i = 0
    n = len(addrs)
    part = controller._partition
    if part:
        num_banks = controller.config.geometry.num_banks
        allowed = np.array([part.get(b, requestor) == requestor
                            for b in range(num_banks)])
        viol = np.flatnonzero(~allowed[banks_np])
    else:
        viol = None
    # Scalar prefix: until the chain's post-queue start time clears the
    # atomic-lock window and every touched bank's pre-existing busy
    # window, service starts are not the simple closed form.  Once past,
    # they stay past: every later mutation (bulk commit, boundary access,
    # even an applied refresh window) leaves the touched bank's
    # busy_until at that element's own finish, which the next issue time
    # already equals.
    max_busy = max(device_banks[b].busy_until
                   for b in np.unique(banks_np).tolist())
    while i < n and (now + q < controller._locked_until
                     or now + q < max_busy):
        result = controller.access(addrs[i], now, requestor=requestor,
                                   is_write=is_write)
        if latencies is not None:
            latencies.append(result.latency)
        now = result.finish
        i += 1
    while i < n:
        if viol is not None:
            nxt = int(np.searchsorted(viol, i))
            m = (int(viol[nxt]) - i) if nxt < viol.size else n - i
        else:
            m = n - i
        committed = 0
        if m:
            committed, now = _commit_dram_run(
                controller, banks_np[i:i + m], rows_np[i:i + m], now, q,
                requestor, is_write, latencies)
            i += committed
        if committed < m or m == 0:
            # Boundary element: open-row timeout, refresh window, or a
            # partition violation — the reference path evaluates it
            # exactly (and raises for the partition case).
            result = controller.access(addrs[i], now, requestor=requestor,
                                       is_write=is_write)
            if latencies is not None:
                latencies.append(result.latency)
            now = result.finish
            i += 1
    return now, latencies


def _classify_dram_chain(controller, banks, rows, issued: int,
                         overhead: int):
    """Classify a chained run and derive its optimistic timing arrays.

    ``overhead`` is the fixed per-element gap between one element's
    finish and the next one's *service start* — ``queue_cycles`` for a
    pure DRAM run, ``queue_cycles`` plus the three cache-probe latencies
    for the hierarchy miss engine's spans.  Returns ``(kinds, lats,
    finishes, service_starts, clean)`` where ``clean`` is the length of
    the prefix unaffected by open-row-timeout violations (``n`` when the
    timeout is disabled).  Times past ``clean`` are optimistic only; the
    caller must not commit beyond it.
    """
    device_banks = controller.device.banks
    ref_bank = device_banks[0]
    timeout = ref_bank._timeout_cycles
    n = len(banks)
    order = np.argsort(banks, kind="stable")
    sorted_banks = banks[order]
    sorted_rows = rows[order]
    # Previous row touched on the same bank within the run; the initial
    # open row (or -1 for precharged) for each bank's first touch.
    prev_rows = np.empty(n, dtype=np.int64)
    prev_rows[1:] = sorted_rows[:-1]
    first_mask = np.empty(n, dtype=bool)
    first_mask[0] = True
    first_mask[1:] = sorted_banks[1:] != sorted_banks[:-1]
    uniq_banks = sorted_banks[first_mask].tolist()
    init_rows = np.array([_open_row_int(device_banks[b])
                          for b in uniq_banks], dtype=np.int64)
    group_ordinal = np.cumsum(first_mask) - 1
    prev_rows[first_mask] = init_rows[group_ordinal[first_mask]]

    kinds_sorted = np.where(
        prev_rows < 0, _KIND_EMPTY,
        np.where(prev_rows == sorted_rows, _KIND_HIT, _KIND_CONFLICT))
    kinds = np.empty(n, dtype=np.int64)
    kinds[order] = kinds_sorted
    lat_table = np.array([ref_bank._hit_cycles, ref_bank._empty_cycles,
                          ref_bank._conflict_cycles], dtype=np.int64)
    lats = lat_table[kinds]
    finishes = issued + np.cumsum(lats + overhead)
    service_starts = finishes - lats

    clean = n
    if timeout > 0:
        finishes_sorted = finishes[order]
        last_act_sorted = np.empty(n, dtype=np.int64)
        last_act_sorted[1:] = finishes_sorted[:-1]
        init_act = np.array([device_banks[b].last_activation
                             for b in uniq_banks], dtype=np.int64)
        last_act_sorted[first_mask] = init_act[group_ordinal[first_mask]]
        ss_sorted = service_starts[order]
        violated_sorted = (prev_rows >= 0) & (
            ss_sorted - last_act_sorted > timeout)
        violated = np.empty(n, dtype=bool)
        violated[order] = violated_sorted
        bad = np.flatnonzero(violated)
        if bad.size:
            clean = int(bad[0])
    return kinds, lats, finishes, service_starts, clean


def _refresh_cut(controller, banks, service_starts) -> int:
    """Length of the run prefix untouched by refresh windows.

    The scalar path evaluates the refresh schedule at each request's
    *service* start (``_refresh_service_start``); past the busy-clearing
    scalar prefix that is exactly the chain's ``service_starts``.  The
    phase formula mirrors :meth:`DRAMDevice._refresh_phase` vectorized
    (numpy ``%`` matches Python's non-negative semantics for a positive
    modulus), so the first element whose phase lands inside ``tRFC``
    bounds the commit — it re-runs through the reference path, which
    applies the window to the bank.
    """
    device = controller.device
    if not device.refresh_enabled:
        return len(banks)
    timings = device.timings
    period = timings.refi_cycles
    ranks = (banks // device.geometry.banks_per_rank)
    staggers = (ranks * period) // max(1, device.geometry.ranks)
    phases = (service_starts + device.refresh_epoch - staggers) % period
    bad = np.flatnonzero(phases < timings.rfc_cycles)
    return int(bad[0]) if bad.size else len(banks)


def _commit_dram_span(controller, banks, rows, kinds, finishes,
                      service_starts, requestor: str,
                      is_write: bool) -> None:
    """Commit a fully-validated span's bank state and statistics in bulk.

    All arrays are pre-sliced to the committed span.  The bank's last
    access in the span decides its row-buffer state; per-kind counts feed
    the stats.
    """
    device_banks = controller.device.banks
    rp = device_banks[0]._rp_cycles
    commit = len(banks)
    hit_mask = kinds == _KIND_HIT
    empty_mask = kinds == _KIND_EMPTY
    hits = int(np.count_nonzero(hit_mask))
    empties = int(np.count_nonzero(empty_mask))
    conflicts = commit - hits - empties
    num_banks = len(device_banks)
    per_bank = np.bincount(banks, minlength=num_banks)
    per_bank_hits = np.bincount(banks[hit_mask], minlength=num_banks)
    per_bank_empties = np.bincount(banks[empty_mask], minlength=num_banks)
    uniq_banks, rev_index = np.unique(banks[::-1], return_index=True)
    last_pos = commit - 1 - rev_index
    for bank_index, last in zip(uniq_banks.tolist(), last_pos.tolist()):
        bank = device_banks[bank_index]
        bank.open_row = int(rows[last])
        bank.busy_until = int(finishes[last])
        bank.last_activation = int(finishes[last])
        bank_hits = int(per_bank_hits[bank_index])
        bank_empties = int(per_bank_empties[bank_index])
        bank_conflicts = int(per_bank[bank_index]) - bank_hits - bank_empties
        stats = bank.stats
        stats.hits += bank_hits
        stats.empties += bank_empties
        stats.conflicts += bank_conflicts
        stats.activations += bank_empties + bank_conflicts
    non_hit = np.flatnonzero(~hit_mask)
    if non_hit.size:
        # row_opened_at tracks the open row's activation start: the
        # bank's last EMPTY opens at its service start, a CONFLICT
        # after the precharge completes; a pure-HIT group leaves it.
        nh_banks = banks[non_hit]
        uniq_nh, nh_rev = np.unique(nh_banks[::-1], return_index=True)
        nh_last = non_hit[non_hit.size - 1 - nh_rev]
        for bank_index, pos in zip(uniq_nh.tolist(), nh_last.tolist()):
            bank = device_banks[bank_index]
            if kinds[pos] == _KIND_EMPTY:
                bank.row_opened_at = int(service_starts[pos])
            else:
                bank.row_opened_at = int(service_starts[pos]) + rp
    rstats = controller._stats_for(requestor)
    if is_write:
        rstats.writes += commit
    else:
        rstats.reads += commit
    rstats.hits += hits
    rstats.conflicts += conflicts


def _commit_dram_run(controller, banks, rows, issued: int, q: int,
                     requestor: str, is_write: bool,
                     latencies: Optional[List[int]],
                     ) -> Tuple[int, int]:
    """Classify and commit a maximal clean prefix of a run.

    Returns ``(elements_committed, finish_time)``.  With the default
    timings (timeout and refresh disabled) the whole run commits;
    otherwise the prefix before the first open-row-timeout violation or
    refresh window commits (optimistic times are exact up to that point —
    either boundary only changes its own and later elements' latencies).
    """
    kinds, lats, finishes, service_starts, clean = _classify_dram_chain(
        controller, banks, rows, issued, q)
    upto = min(clean, _refresh_cut(controller, banks, service_starts))
    if upto == 0:
        return 0, issued
    if upto < len(banks):
        banks = banks[:upto]
        rows = rows[:upto]
        kinds = kinds[:upto]
        lats = lats[:upto]
        finishes = finishes[:upto]
        service_starts = service_starts[:upto]
    if latencies is not None:
        # Reference latency is finish - issue, which includes the queue
        # overhead (service_start = previous finish + queue_cycles).
        latencies.extend((lats + q).tolist())
    _commit_dram_span(controller, banks, rows, kinds, finishes,
                      service_starts, requestor, is_write)
    return upto, int(finishes[-1])


def _open_row_int(bank) -> int:
    """The bank's open row with ``None`` (precharged) encoded as -1."""
    row = bank.open_row
    return -1 if row is None else row
