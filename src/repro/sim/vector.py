"""Numpy-vectorized batch engine for the simulation hot paths.

``CacheHierarchy.access_batch`` and ``MemoryController.access_run`` spend
most of their time in per-element Python dispatch: dict probes, bound
method calls, and result-object construction for every simulated access.
At channel-sweep scale (ROADMAP item 2) that interpreter cost is the
throughput ceiling.  This module replaces the *interior* of those loops
with array passes while preserving the repo's hard invariant: the vector
backend is **bit-identical** to the reference scalar path — same
latencies, same statistics, same replacement/row-buffer state, snapshot
for snapshot.

Design: classify, bulk-commit, fall back.

- **Cache side** (:func:`access_batch_vector`): set indices and tags for
  a whole chunk are computed with int64 array arithmetic and resolved
  against the L1's numpy tag mirror
  (:meth:`repro.cache.cache.Cache.tag_matrix`) in one pass.  Runs of
  proven L1 hits commit in bulk — replacement metadata through the
  policies' bulk-update rules
  (:meth:`~repro.cache.replacement.ReplacementPolicy.on_hit_run`),
  counters as single ``+= k`` increments, latencies in closed form.
  Anything the classifier cannot prove an L1 hit (L2/LLC hits, DRAM
  misses, demoted elements) drops to an inline copy of the reference
  scalar body, which walks the controller, prefetchers, and fills one
  element at a time exactly as ``access_batch`` does.
- **Staleness is handled by demotion, never by trusting the mirror**: a
  chunk is classified once, and every event that can remove a line from
  L1 (an L1 fill eviction, an inclusive-LLC back-invalidation — reported
  through the hierarchy's removal sink) demotes all not-yet-processed
  elements on that line to the scalar path.  Demotion is always safe:
  the scalar path re-checks everything; the only unsafe direction would
  be trusting a stale "hit", which never happens.
- **DRAM side** (:func:`controller_run_vector`): a back-to-back run
  decodes every address with
  :meth:`~repro.dram.address.AddressMapping.decode_banks_rows`,
  classifies row hit/empty/conflict per bank with a grouped previous-row
  compare, and derives service starts and finishes as one cumulative
  sum.  Refresh windows, closed-row policy, constant-time defense,
  partitions, and atomic-lock/busy windows keep the reference
  ``controller.access`` path (so every PR 3 sanitizer invariant holds);
  open-row-timeout violations commit the exact clean prefix and hand the
  violating element to the scalar path.

Backend selection is per call: ``backend=None`` (auto) engages the
vector path when the batch is at least :data:`MIN_VECTOR_BATCH` elements
and no observer is installed; ``backend="scalar"`` forces the reference
loop; ``backend="vector"`` requires numpy and raises a clear error
without it (but still yields the scalar path when an observer is
attached — observers must see per-element events in order).
``REPRO_NO_VECTOR=1`` is the global kill switch, and ``REPRO_SANITIZE``
also forces scalar so sanitized runs always exercise the reference
event stream.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

from repro.obs import sanitize_requested

try:  # pragma: no cover - import outcome depends on the environment
    import numpy as np

    _NUMPY_ERROR: Optional[str] = None
    _version = tuple(int(part) for part in np.__version__.split(".")[:2])
    if _version < (1, 24):
        _NUMPY_ERROR = (
            f"repro.sim.vector needs numpy>=1.24 for stable int64 batch "
            f"semantics; found numpy {np.__version__}. Upgrade with "
            f"`pip install 'numpy>=1.24'`, or set REPRO_NO_VECTOR=1 to "
            f"run the scalar backend only."
        )
        np = None  # type: ignore[assignment]
except ImportError:
    np = None  # type: ignore[assignment]
    _NUMPY_ERROR = (
        "repro.sim.vector needs numpy (declared in pyproject.toml) but it "
        "is not importable. Install it with `pip install 'numpy>=1.24'`, "
        "or stay on the scalar backend (backend='scalar', or set "
        "REPRO_NO_VECTOR=1 to silence vector-backend requests)."
    )

#: Auto mode engages the vector engine at this batch length; below it the
#: classification pass costs more than it saves.
MIN_VECTOR_BATCH = 64

#: Batches are classified and processed in chunks of this many elements,
#: bounding demotion scans and keeping the classification close to the
#: state it was computed against.
CHUNK = 4096

#: Below this initial L1-hit fraction a chunk runs the reference scalar
#: loop outright — a miss-dominated chunk has no bulk-commit runs to win,
#: and per-miss demotion scans would make the vector pass a pure loss.
MIN_HIT_FRACTION = 0.5

#: Prefix length for the miss-dominated pre-check: when a chunk is at
#: least 8x this long, a prefix this size is classified first and a
#: sub-threshold hit fraction there bails to the scalar loop without
#: paying the full-chunk compare (all-miss streaming sweeps then run
#: within ~1% of the pure scalar path).
_SAMPLE = 256


def numpy_available() -> bool:
    """True when a usable numpy (>= 1.24) imported."""
    return np is not None


def numpy_error() -> Optional[str]:
    """Why numpy is unusable, or ``None`` when it is available."""
    return _NUMPY_ERROR


def require_numpy() -> None:
    """Raise a clear error when the vector backend was explicitly
    requested but numpy is missing or too old."""
    if np is None:
        raise RuntimeError(_NUMPY_ERROR or "numpy unavailable")


def vector_killed() -> bool:
    """True when ``REPRO_NO_VECTOR`` globally disables the vector paths."""
    return os.environ.get("REPRO_NO_VECTOR", "").strip().lower() \
        not in ("", "0", "false", "no", "off")


def resolve_backend(backend: Optional[str], count: int,
                    observer: object) -> str:
    """Pick ``"vector"`` or ``"scalar"`` for one batch call.

    ``backend=None`` (or ``"auto"``) is auto; ``"vector"`` is a hard
    request that raises without numpy but still falls back to scalar when
    an observer is attached, a sanitized run was requested, or the kill
    switch is set — those contracts outrank the caller's preference.
    """
    if backend == "auto":
        backend = None
    if backend == "scalar":
        return "scalar"
    if backend == "vector":
        require_numpy()
        if observer is not None or vector_killed() or sanitize_requested():
            return "scalar"
        return "vector"
    if backend is not None:
        raise ValueError(
            f"unknown backend {backend!r}; choose 'scalar', 'vector', "
            f"or 'auto' (None)")
    if (np is None or count < MIN_VECTOR_BATCH or observer is not None
            or vector_killed() or sanitize_requested()):
        return "scalar"
    return "vector"


# ---------------------------------------------------------------------------
# Cache-hierarchy batch engine
# ---------------------------------------------------------------------------


def access_batch_vector(h, core: int, addrs, issued: int, *,
                        is_write: bool = False, pc: Optional[int] = None,
                        requestor: str = "cpu",
                        collect_latencies: bool = False,
                        ) -> Tuple[int, Optional[List[int]]]:
    """Vectorized equivalent of ``CacheHierarchy.access_batch``.

    Returns ``(finish, latencies)``; ``latencies`` is ``None`` unless
    ``collect_latencies`` (the ``probe_batch`` shape).  The dispatcher
    guarantees no observer is attached; the inline scalar body still
    carries the observer hooks as guarded no-ops for defense in depth.
    """
    if not isinstance(addrs, (list, tuple)):
        addrs = list(addrs)
    latencies: Optional[List[int]] = [] if collect_latencies else None
    now = issued
    sink: List[int] = []
    h._l1_removal_sink = sink
    try:
        for start in range(0, len(addrs), CHUNK):
            chunk = addrs[start:start + CHUNK]
            now = _run_chunk(h, core, chunk, now, is_write, pc, requestor,
                             latencies, sink)
            sink.clear()
    finally:
        h._l1_removal_sink = None
    return now, latencies


def _run_chunk(h, core: int, addrs, now: int, is_write: bool,
               pc: Optional[int], requestor: str,
               latencies: Optional[List[int]], sink: List[int]) -> int:
    """Classify one chunk against the current L1 state and process it."""
    l1 = h.l1[core]
    n = len(addrs)
    line_bytes = l1._line_bytes
    addrs_np = np.asarray(addrs, dtype=np.int64)
    lines = addrs_np // line_bytes
    sets = lines % l1._num_sets
    tags = l1.tag_matrix()
    if n >= 8 * _SAMPLE:
        # Cheap pre-check: classify a small prefix first so miss-dominated
        # chunks (streaming sweeps) skip the full-chunk compare and go
        # straight to the reference loop.  The prefix is only a heuristic
        # — the authoritative per-element classification below decides
        # what actually gets bulk-committed.
        head = tags[sets[:_SAMPLE]] == lines[:_SAMPLE, None]
        if float(head.any(axis=1).mean()) < MIN_HIT_FRACTION:
            return _scalar_span(h, core, addrs, now, is_write, pc,
                                requestor, latencies, sink)
    match = tags[sets] == lines[:, None]
    hit = match.any(axis=1)
    if float(hit.mean()) < MIN_HIT_FRACTION:
        # Miss-dominated chunk: nothing to bulk-commit — reference loop.
        return _scalar_span(h, core, addrs, now, is_write, pc, requestor,
                            latencies, sink)
    ways = match.argmax(axis=1)
    hit_l = hit.tolist()
    sets_l = sets.tolist()
    ways_l = ways.tolist()
    chunk_lines = set(lines.tolist())

    def drain_sink(frm: int) -> None:
        # A line leaving L1 demotes every unprocessed element on it.
        # Over-demotion is always safe (the scalar path re-checks), so
        # LLC back-invalidations demote without asking whether this L1
        # actually held the line.
        for removed_addr in sink:
            removed_line = removed_addr // line_bytes
            if removed_line not in chunk_lines:
                continue
            for pos in np.flatnonzero(lines[frm:] == removed_line).tolist():
                hit_l[frm + pos] = False
        sink.clear()

    lean = bool(h._pf_observe) or bool(h._inflight_fills)
    i = 0
    while i < n:
        if hit_l[i]:
            j = i + 1
            while j < n and hit_l[j]:
                j += 1
            if lean:
                now, i = _commit_hits_lean(h, core, addrs, sets_l, ways_l,
                                           i, j, now, is_write, pc,
                                           requestor, latencies, sink,
                                           drain_sink, hit_l, l1)
            else:
                now = _commit_hits_bulk(h, sets, ways, i, j, now, is_write,
                                        requestor, latencies, l1)
                i = j
        else:
            now = _scalar_element(h, core, addrs[i], now, is_write, pc,
                                  requestor, latencies)
            i += 1
            if sink:
                drain_sink(i)
    return now


def _commit_hits_bulk(h, sets, ways, i: int, j: int, now: int,
                      is_write: bool, requestor: str,
                      latencies: Optional[List[int]], l1) -> int:
    """Commit ``[i, j)`` — all proven L1 hits, prefetchers off, no
    in-flight fills, so every element is a constant-latency hit — with
    array updates equivalent to ``k`` reference iterations."""
    k = j - i
    lat = h._l1_latency
    run_sets = sets[i:j]
    run_ways = ways[i:j]
    l1._policy.on_hit_run(run_sets, run_ways)
    if is_write:
        dirty = l1._dirty
        width = l1._ways
        for flat in np.unique(run_sets * width + run_ways).tolist():
            dirty[flat // width][flat % width] = True
    l1.stats.hits += k
    stats = h.stats
    stats.demand_accesses += k
    rs = stats.requestor(requestor)
    if rs.accesses == 0 and rs.clflushes == 0:
        rs.first_seen_cycle = now
    last_issue = now + (k - 1) * lat
    if last_issue > rs.last_seen_cycle:
        rs.last_seen_cycle = last_issue
    rs.accesses += k
    if latencies is not None:
        latencies.extend([lat] * k)
    return now + k * lat


def _commit_hits_lean(h, core: int, addrs, sets_l, ways_l, i: int, j: int,
                      now: int, is_write: bool, pc: Optional[int],
                      requestor: str, latencies: Optional[List[int]],
                      sink: List[int], drain_sink, hit_l, l1,
                      ) -> Tuple[int, int]:
    """Commit proven hits ``[i, j)`` with the prefetchers live.

    Prefetcher state must evolve per element (it feeds on the demand
    stream), so this is a lean per-element loop: replacement, stats, and
    stall bookkeeping inlined, the two prefetcher ``observe`` calls kept
    (inside ``_run_prefetchers``), and the heavyweight issue path only
    when candidates appear.  A prefetch that back-invalidates a line
    demotes the tail; the loop stops early if its own next element was
    demoted.  Returns ``(now, next_index)``.
    """
    stats = h.stats
    rs = stats.requestor(requestor)
    rrpv = l1._rrpv
    policy_on_hit = l1._policy_on_hit
    dirty = l1._dirty
    l1_stats = l1.stats
    lat = h._l1_latency
    inflight = h._inflight_fills
    late_stall = h._late_prefetch_stall
    run_prefetchers = h._run_prefetchers
    virgin = rs.accesses == 0 and rs.clflushes == 0
    idx = i
    while idx < j:
        addr = addrs[idx]
        stall = late_stall(addr, now) if inflight else 0
        s = sets_l[idx]
        w = ways_l[idx]
        if rrpv is not None:
            rrpv[s][w] = 0
        else:
            policy_on_hit(s, w)
        if is_write:
            dirty[s][w] = True
        l1_stats.hits += 1
        stats.demand_accesses += 1
        if virgin:
            rs.first_seen_cycle = now
            virgin = False
        if now > rs.last_seen_cycle:
            rs.last_seen_cycle = now
        rs.accesses += 1
        latency = stall + lat
        if latencies is not None:
            latencies.append(latency)
        finish = now + latency
        run_prefetchers(core, addr, pc, finish, requestor)
        now = finish
        idx += 1
        if sink:
            drain_sink(idx)
            if idx < j and not hit_l[idx]:
                break
    return now, idx


def _scalar_span(h, core: int, addrs, now: int, is_write: bool,
                 pc: Optional[int], requestor: str,
                 latencies: Optional[List[int]], sink: List[int]) -> int:
    """Run a whole span through the reference scalar loop.

    The removal sink is detached for the duration: the caller classifies
    its next chunk fresh, so removals inside the span are irrelevant and
    recording them would only queue useless demotion scans.
    """
    h._l1_removal_sink = None
    try:
        if latencies is None:
            return h._access_batch_scalar(core, addrs, now,
                                          is_write=is_write, pc=pc,
                                          requestor=requestor)
        finish, span_lat = h._probe_batch_scalar(core, addrs, now,
                                                 is_write=is_write, pc=pc,
                                                 requestor=requestor)
        latencies.extend(span_lat)
        return finish
    finally:
        h._l1_removal_sink = sink


def _scalar_element(h, core: int, addr: int, now: int, is_write: bool,
                    pc: Optional[int], requestor: str,
                    latencies: Optional[List[int]]) -> int:
    """One element through the reference path — a line-for-line mirror of
    the ``access_batch`` loop body.  The hierarchy's removal sink is
    live, so fills report the L1 lines they displace."""
    h.stats.demand_accesses += 1
    latency = ((h._late_prefetch_stall(addr, now) if h._inflight_fills
                else 0) + h._l1_latency)
    miss = False
    if h.l1[core].access(addr, is_write=is_write):
        pass
    else:
        latency += h._l2_latency
        if h.l2[core].access(addr):
            h._fill_l1(core, addr, is_write)
        else:
            latency += h._llc_latency
            if h.llc.access(addr):
                h._fill_upper(core, addr, is_write)
            else:
                mem = h.controller.access(addr, now + latency,
                                          requestor=requestor,
                                          is_write=is_write)
                finish = mem.finish
                latency = finish - now
                h._fill_all(core, addr, is_write, time=finish,
                            requestor=requestor)
                miss = True
                if h._obs is not None:  # pragma: no cover - gate keeps obs off
                    h._obs.on_cache_miss(core, addr, now, finish, requestor)
    h.stats.observe(requestor, now, miss=miss)
    if latencies is not None:
        latencies.append(latency)
    finish = now + latency
    h._run_prefetchers(core, addr, pc, finish, requestor)
    return finish


# ---------------------------------------------------------------------------
# DRAM back-to-back run engine
# ---------------------------------------------------------------------------

_KIND_HIT = 0
_KIND_EMPTY = 1
_KIND_CONFLICT = 2


def controller_run_vector(controller, addrs, issued: int, *,
                          requestor: str = "cpu", is_write: bool = False,
                          collect_latencies: bool = False,
                          ) -> Tuple[int, Optional[List[int]]]:
    """Vectorized back-to-back DRAM run (``MemoryController.access_run``).

    Semantics: each access is issued at the previous access's finish.
    The dispatcher guarantees the easy regime — open-row policy, no
    constant-time defense, no refresh, no partitions, no observer.  The
    remaining hazards are handled inline: an atomic-lock window or a bank
    still busy beyond the chain's issue times runs a scalar prefix until
    the chain clears it, and open-row-timeout violations commit the exact
    clean prefix before handing the violating element to the scalar path.
    """
    latencies: Optional[List[int]] = [] if collect_latencies else None
    addrs_np = np.asarray(addrs, dtype=np.int64)
    banks_np, rows_np = controller.mapper.decode_banks_rows(addrs_np)
    q = controller._queue_cycles
    device_banks = controller.device.banks
    now = issued
    i = 0
    n = len(addrs)
    # Scalar prefix: until the chain's post-queue start time clears the
    # atomic-lock window and every touched bank's pre-existing busy
    # window, service starts are not the simple closed form.  Once past,
    # they stay past: each access leaves its bank's busy_until at its own
    # finish, which the next issue time already equals.
    max_busy = max(device_banks[b].busy_until
                   for b in np.unique(banks_np).tolist())
    while i < n and (now + q < controller._locked_until
                     or now + q < max_busy):
        result = controller.access(addrs[i], now, requestor=requestor,
                                   is_write=is_write)
        if latencies is not None:
            latencies.append(result.latency)
        now = result.finish
        i += 1
    while i < n:
        committed, now = _commit_dram_run(
            controller, banks_np[i:], rows_np[i:], now, q, requestor,
            is_write, latencies)
        i += committed
        if i < n:
            # The element after the clean prefix tripped the open-row
            # timeout — the reference path evaluates it exactly.
            result = controller.access(addrs[i], now, requestor=requestor,
                                       is_write=is_write)
            if latencies is not None:
                latencies.append(result.latency)
            now = result.finish
            i += 1
    return now, latencies


def _commit_dram_run(controller, banks, rows, issued: int, q: int,
                     requestor: str, is_write: bool,
                     latencies: Optional[List[int]],
                     ) -> Tuple[int, int]:
    """Classify and commit a maximal timeout-clean prefix of a run.

    Returns ``(elements_committed, finish_time)``.  With the default
    timings (``row_timeout_ns = 0`` — timeout disabled) the whole run
    commits; otherwise the prefix before the first open-row-timeout
    violation commits (optimistic times are exact up to that point — a
    violation only changes its own and later elements' latencies).
    """
    device_banks = controller.device.banks
    ref_bank = device_banks[0]
    hit_c = ref_bank._hit_cycles
    empty_c = ref_bank._empty_cycles
    conflict_c = ref_bank._conflict_cycles
    rp = ref_bank._rp_cycles
    timeout = ref_bank._timeout_cycles
    n = len(banks)
    order = np.argsort(banks, kind="stable")
    sorted_banks = banks[order]
    sorted_rows = rows[order]
    # Previous row touched on the same bank within the run; the initial
    # open row (or -1 for precharged) for each bank's first touch.
    prev_rows = np.empty(n, dtype=np.int64)
    prev_rows[1:] = sorted_rows[:-1]
    first_mask = np.empty(n, dtype=bool)
    first_mask[0] = True
    first_mask[1:] = sorted_banks[1:] != sorted_banks[:-1]
    uniq_banks = sorted_banks[first_mask].tolist()
    init_rows = np.array([_open_row_int(device_banks[b])
                          for b in uniq_banks], dtype=np.int64)
    group_ordinal = np.cumsum(first_mask) - 1
    prev_rows[first_mask] = init_rows[group_ordinal[first_mask]]

    kinds_sorted = np.where(
        prev_rows < 0, _KIND_EMPTY,
        np.where(prev_rows == sorted_rows, _KIND_HIT, _KIND_CONFLICT))
    kinds = np.empty(n, dtype=np.int64)
    kinds[order] = kinds_sorted
    lat_table = np.array([hit_c, empty_c, conflict_c], dtype=np.int64)
    lats = lat_table[kinds]
    finishes = issued + np.cumsum(lats + q)
    service_starts = finishes - lats

    commit = n
    if timeout > 0:
        finishes_sorted = finishes[order]
        last_act_sorted = np.empty(n, dtype=np.int64)
        last_act_sorted[1:] = finishes_sorted[:-1]
        init_act = np.array([device_banks[b].last_activation
                             for b in uniq_banks], dtype=np.int64)
        last_act_sorted[first_mask] = init_act[group_ordinal[first_mask]]
        ss_sorted = service_starts[order]
        violated_sorted = (prev_rows >= 0) & (
            ss_sorted - last_act_sorted > timeout)
        violated = np.empty(n, dtype=bool)
        violated[order] = violated_sorted
        bad = np.flatnonzero(violated)
        if bad.size:
            commit = int(bad[0])
            if commit == 0:
                return 0, issued
            banks = banks[:commit]
            rows = rows[:commit]
            kinds = kinds[:commit]
            lats = lats[:commit]
            finishes = finishes[:commit]
            service_starts = service_starts[:commit]

    if latencies is not None:
        # Reference latency is finish - issue, which includes the queue
        # overhead (service_start = previous finish + queue_cycles).
        latencies.extend((lats + q).tolist())

    # Per-bank bulk state commit: the bank's last access in the run
    # decides its row-buffer state; per-kind counts feed the stats.
    hits = int(np.count_nonzero(kinds == _KIND_HIT))
    empties = int(np.count_nonzero(kinds == _KIND_EMPTY))
    conflicts = commit - hits - empties
    for bank_index in np.unique(banks).tolist():
        bank = device_banks[bank_index]
        positions = np.flatnonzero(banks == bank_index)
        last = int(positions[-1])
        bank.open_row = int(rows[last])
        bank.busy_until = int(finishes[last])
        bank.last_activation = int(finishes[last])
        bank_kinds = kinds[positions]
        bank_hits = int(np.count_nonzero(bank_kinds == _KIND_HIT))
        bank_empties = int(np.count_nonzero(bank_kinds == _KIND_EMPTY))
        bank_conflicts = positions.size - bank_hits - bank_empties
        stats = bank.stats
        stats.hits += bank_hits
        stats.empties += bank_empties
        stats.conflicts += bank_conflicts
        stats.activations += bank_empties + bank_conflicts
        non_hit = np.flatnonzero(bank_kinds != _KIND_HIT)
        if non_hit.size:
            # row_opened_at tracks the open row's activation start: the
            # bank's last EMPTY opens at its service start, a CONFLICT
            # after the precharge completes; a pure-HIT group leaves it.
            pos = int(positions[non_hit[-1]])
            if kinds[pos] == _KIND_EMPTY:
                bank.row_opened_at = int(service_starts[pos])
            else:
                bank.row_opened_at = int(service_starts[pos]) + rp
    rstats = controller._stats_for(requestor)
    if is_write:
        rstats.writes += commit
    else:
        rstats.reads += commit
    rstats.hits += hits
    rstats.conflicts += conflicts
    return commit, int(finishes[-1])


def _open_row_int(bank) -> int:
    """The bank's open row with ``None`` (precharged) encoded as -1."""
    row = bank.open_row
    return -1 if row is None else row
