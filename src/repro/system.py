"""The simulated PiM-enabled system: everything wired together.

:class:`System` builds the full machine from a :class:`SystemConfig` —
memory controller, cache hierarchy, per-core MMUs, PEI engine, RowClone
engine, DMA engine, background noise — and exposes the *operation API* that
simulated threads (attack senders/receivers, victims, workloads) call.
Every operation takes the calling thread's :class:`repro.sim.Context` and
advances its clock by the operation's latency.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.cache.hierarchy import CacheHierarchy, HierarchyResult
from repro.config import SystemConfig
from repro.dram.controller import MemoryController, MemoryResult
from repro.mmu.mmu import MMU, MMUConfig
from repro.mmu.page_table import PageTableWalker
from repro.obs import (MetricsObserver, MetricsRegistry, MultiObserver,
                       Observer, Sanitizer, current_metrics, current_observer,
                       sanitize_requested)
from repro.pim.offchip import OffChipPredictor, OffChipPredictorConfig
from repro.pim.pei import ExecutionSite, PEIEngine, PEIResult
from repro.pim.rowclone import RowCloneEngine, RowCloneResult
from repro.sim.scheduler import Context
from repro.sim.snapshot import SystemSnapshot
from repro.sim.timer import CycleTimer


class BackgroundNoise:
    """Poisson background row activations in random banks (§5.1 noise).

    Attack harnesses call :meth:`run` over each observation window; the
    injector replays the stray activations (co-running prefetchers,
    page-table walkers, refresh shadows) that fell inside it.
    """

    def __init__(self, controller: MemoryController, rate_per_kilocycle: float,
                 seed: int) -> None:
        self.controller = controller
        self.rate = rate_per_kilocycle / 1000.0
        self._rng = random.Random(seed)
        self._next_event: Optional[int] = None
        self.injected = 0

    def _schedule_from(self, time: int) -> int:
        gap = self._rng.expovariate(self.rate) if self.rate > 0 else float("inf")
        return time + max(1, int(gap))

    def run(self, start: int, end: int) -> int:
        """Inject activations in [start, end); returns how many fired."""
        if self.rate <= 0 or end <= start:
            return 0
        if self._next_event is None or self._next_event < start:
            self._next_event = self._schedule_from(start)
        fired = 0
        while self._next_event < end:
            bank = self._rng.randrange(self.controller.num_banks)
            row = self._rng.randrange(self.controller.config.geometry.rows_per_bank)
            self.controller.activate(bank, row, self._next_event,
                                     requestor="noise")
            fired += 1
            self.injected += 1
            self._next_event = self._schedule_from(self._next_event)
        return fired

    def snapshot_state(self) -> tuple:
        """Copied injector state (RNG stream position + pending event)."""
        return self._rng.getstate(), self._next_event, self.injected

    def restore_state(self, state: tuple) -> None:
        rng_state, self._next_event, self.injected = state
        self._rng.setstate(rng_state)


class System:
    """A PiM-enabled machine assembled from a :class:`SystemConfig`."""

    PAGE_TABLE_BASE_FRACTION = 0.75  # page tables live high in memory

    def __init__(self, config: Optional[SystemConfig] = None, *,
                 observer: Optional[Observer] = None,
                 sanitize: Optional[bool] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        """Build the machine.

        Args:
            config: system configuration (paper defaults when omitted).
            observer: a :class:`repro.obs.Observer` (e.g. a ``Tracer``)
                attached to every instrumented component; defaults to the
                process-global observer, if one is installed.
            sanitize: attach a strict :class:`repro.obs.Sanitizer` that
                raises on any timing-invariant violation.  ``None`` (the
                default) defers to the ``REPRO_SANITIZE`` environment
                variable.
            metrics: a :class:`repro.obs.MetricsRegistry` fed by this
                machine's components (DRAM commands, cache events, PEI
                operations) and by the attack channels built on it;
                defaults to the process-global registry installed via
                ``repro.obs.install_metrics`` (``None`` = metrics off,
                which costs nothing on the simulation hot paths).
        """
        self.config = config or SystemConfig.paper_default()
        if sanitize is None:
            sanitize = sanitize_requested()
        self.sanitizer: Optional[Sanitizer] = Sanitizer() if sanitize else None
        self.metrics: Optional[MetricsRegistry] = (
            metrics if metrics is not None else current_metrics())
        base = observer if observer is not None else current_observer()
        parts: List[Observer] = [p for p in (base, self.sanitizer)
                                 if p is not None]
        if self.metrics is not None:
            parts.append(MetricsObserver(self.metrics))
        if len(parts) > 1:
            self.observer: Optional[Observer] = MultiObserver(parts)
        elif parts:
            self.observer = parts[0]
        else:
            self.observer = None
        self.controller = MemoryController(self.config.controller_config())
        self.hierarchy = CacheHierarchy(self.config.hierarchy, self.controller)
        capacity = self.config.geometry.capacity_bytes
        table_base = int(capacity * self.PAGE_TABLE_BASE_FRACTION)
        self.walkers = [PageTableWalker(self.hierarchy, table_base)
                        for _ in range(self.config.num_cores)]
        self.mmus = [MMU(MMUConfig(), self.walkers[core], core)
                     for core in range(self.config.num_cores)]
        self.pei = PEIEngine(self.config.pei, self.controller, self.hierarchy)
        self.rowclone_engine = RowCloneEngine(self.config.rowclone,
                                              self.controller)
        self.noise = BackgroundNoise(
            self.controller, self.config.noise.activation_rate_per_kilocycle,
            self.config.noise.seed)
        self._dma_rng = random.Random(self.config.dma.jitter_seed)
        self.offchip_predictor: Optional[OffChipPredictor] = None
        if self.observer is not None:
            self.controller.set_observer(self.observer)
            self.hierarchy.set_observer(self.observer)
            self.pei.set_observer(self.observer)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def enable_offchip_predictor(
            self, config: Optional[OffChipPredictorConfig] = None) -> OffChipPredictor:
        """Attach a Hermes-style predictor (PnM-OffChip baseline, §5.1)."""
        self.offchip_predictor = OffChipPredictor(
            config or OffChipPredictorConfig(), self.config.hierarchy.llc_size_mb)
        return self.offchip_predictor

    def new_timer(self) -> CycleTimer:
        """A cpuid+rdtscp-style timer under this system's timer config."""
        return CycleTimer(self.config.timer)

    def reset_stats(self) -> None:
        """Zero every statistics counter in the machine — cache hierarchy,
        memory controller, and per-bank DRAM counters — while keeping all
        architectural state (cache contents, row buffers, TLBs).  Callers
        measuring a warm replay reset here after the warm-up pass."""
        self.hierarchy.reset_stats()
        self.controller.reset_stats()

    # ------------------------------------------------------------------
    # Warm-state snapshot / restore
    # ------------------------------------------------------------------

    def snapshot(self) -> SystemSnapshot:
        """Capture every piece of mutable architectural state — cache
        contents and replacement metadata, row-buffer/bank state, TLBs,
        prefetcher tables, predictor weights, RNG stream positions, and all
        statistics counters — as an independent copy.

        A snapshot taken after a warm-up replay lets runners restore a warm
        machine instead of re-running the warm-up for every measurement
        sharing the same configuration (see :mod:`repro.sim.snapshot`).
        """
        predictor = self.offchip_predictor
        payload = {
            "controller": self.controller.snapshot_state(),
            "hierarchy": self.hierarchy.snapshot_state(),
            "mmus": [mmu.snapshot_state() for mmu in self.mmus],
            "walker_walks": [walker.walks for walker in self.walkers],
            "pei": self.pei.snapshot_state(),
            "rowclone_operations": self.rowclone_engine.operations,
            "noise": self.noise.snapshot_state(),
            "dma_rng": self._dma_rng.getstate(),
            "offchip_predictor": (predictor.snapshot_state()
                                  if predictor is not None else None),
        }
        return SystemSnapshot(config=self.config, payload=payload)

    def restore(self, snap: SystemSnapshot) -> None:
        """Restore a :meth:`snapshot`.  The snapshot's configuration must
        equal this system's — state captured under one geometry or policy
        is meaningless under another."""
        if snap.config != self.config:
            raise ValueError(
                "snapshot was taken under a different SystemConfig; "
                "build a matching System before restoring")
        predictor_state = snap.component("offchip_predictor")
        if (predictor_state is None) != (self.offchip_predictor is None):
            raise ValueError(
                "snapshot and system disagree on off-chip predictor "
                "presence; call enable_offchip_predictor() to match")
        self.controller.restore_state(snap.component("controller"))
        self.hierarchy.restore_state(snap.component("hierarchy"))
        for mmu, mmu_state in zip(self.mmus, snap.component("mmus")):
            mmu.restore_state(mmu_state)
        for walker, walks in zip(self.walkers,
                                 snap.component("walker_walks")):
            walker.walks = walks
        self.pei.restore_state(snap.component("pei"))
        self.rowclone_engine.operations = snap.component("rowclone_operations")
        self.noise.restore_state(snap.component("noise"))
        self._dma_rng.setstate(snap.component("dma_rng"))
        if predictor_state is not None:
            self.offchip_predictor.restore_state(predictor_state)

    @property
    def num_banks(self) -> int:
        return self.controller.num_banks

    @property
    def cpu_hz(self) -> float:
        return self.config.cpu_ghz * 1e9

    def cycles_to_mbps(self, bits: int, cycles: int) -> float:
        """Convert (bits transferred, cycles elapsed) to Mb/s (§5.1)."""
        if cycles <= 0:
            return 0.0
        return bits * self.cpu_hz / cycles / 1e6

    # ------------------------------------------------------------------
    # Thread-facing operation API (each advances ctx.now)
    # ------------------------------------------------------------------

    def load(self, ctx: Context, core: int, addr: int, *,
             is_write: bool = False, pc: Optional[int] = None,
             translate: bool = False,
             requestor: Optional[str] = None) -> HierarchyResult:
        """Demand load/store through the cache hierarchy."""
        who = requestor if requestor is not None else ctx.name
        issued = ctx.now
        if translate:
            translation = self.mmus[core].translate(addr, issued)
            issued += translation.latency
            addr = translation.paddr
        result = self.hierarchy.access(core, addr, issued, is_write=is_write,
                                       pc=pc, requestor=who)
        ctx.advance_to(result.finish)
        return result

    def load_many(self, ctx: Context, core: int, addrs: List[int], *,
                  is_write: bool = False, pc: Optional[int] = None,
                  requestor: Optional[str] = None,
                  backend: Optional[str] = None) -> int:
        """Back-to-back demand loads/stores (eviction walks, replays).

        Equivalent to calling :meth:`load` once per address (without
        address translation), but with the per-access call overhead and
        result construction hoisted out of the loop.  Returns the batch's
        finish time.  ``backend`` selects the scalar reference loop or
        the numpy vector engine (default auto — see
        :meth:`repro.cache.hierarchy.CacheHierarchy.access_batch`).
        Only safe when no other runnable thread touches the memory system
        during the batch — the scheduler checkpoints a hand-written loop
        would yield at are elided (see EXPERIMENTS.md).
        """
        who = requestor if requestor is not None else ctx.name
        finish = self.hierarchy.access_batch(core, addrs, ctx.now,
                                             is_write=is_write, pc=pc,
                                             requestor=who, backend=backend)
        ctx.advance_to(finish)
        return finish

    def probe_many(self, ctx: Context, core: int, addrs: List[int], *,
                   requestor: Optional[str] = None,
                   backend: Optional[str] = None) -> List[int]:
        """Back-to-back *timed* loads: returns each access's latency.

        For receiver probe loops that decode per-access latencies; the
        same batching-safety rule and backend selection as
        :meth:`load_many` apply.
        """
        who = requestor if requestor is not None else ctx.name
        finish, latencies = self.hierarchy.probe_batch(core, addrs, ctx.now,
                                                       requestor=who,
                                                       backend=backend)
        ctx.advance_to(finish)
        return latencies

    def dram_run(self, ctx: Context, addrs: List[int], *,
                 is_write: bool = False, requestor: Optional[str] = None,
                 backend: Optional[str] = None) -> List[int]:
        """Back-to-back *uncached* DRAM accesses, returning latencies.

        The DRAMA-style receiver shape: every access goes straight to the
        memory controller (no cache lookup), chained issue-at-previous-
        finish.  Same batching-safety rule as :meth:`load_many`; backend
        selection per :meth:`repro.dram.controller.MemoryController.
        access_run`.
        """
        who = requestor if requestor is not None else ctx.name
        finish, latencies = self.controller.access_run(
            addrs, ctx.now, requestor=who, is_write=is_write,
            collect_latencies=True, backend=backend)
        ctx.advance_to(finish)
        return latencies

    def clflush(self, ctx: Context, core: int, addr: int, *,
                requestor: Optional[str] = None) -> HierarchyResult:
        """Flush a line; write-back latency is on the critical path."""
        who = requestor if requestor is not None else ctx.name
        result = self.hierarchy.clflush(core, addr, ctx.now, requestor=who)
        ctx.advance_to(result.finish)
        return result

    def nt_load(self, ctx: Context, core: int, addr: int, *,
                requestor: Optional[str] = None) -> HierarchyResult:
        """Non-temporal load (bypass not guaranteed, Table 1)."""
        who = requestor if requestor is not None else ctx.name
        result = self.hierarchy.nt_access(core, addr, ctx.now, requestor=who)
        ctx.advance_to(result.finish)
        return result

    def dma_access(self, ctx: Context, addr: int, *,
                   is_write: bool = False,
                   requestor: Optional[str] = None) -> MemoryResult:
        """DMA-engine access: no cache lookup, heavy software stack (§3.2).

        The software stack's cost jitters (scheduling, doorbell, completion
        polling); the jitter is what blunts the DMA primitive's view of the
        row-buffer timing gap (Table 1)."""
        who = requestor if requestor is not None else ctx.name
        dma = self.config.dma
        overhead = dma.software_overhead_cycles + dma.engine_cycles
        if dma.jitter_cycles:
            overhead += self._dma_rng.randint(-dma.jitter_cycles,
                                              dma.jitter_cycles)
        issued = ctx.now + max(0, overhead)
        result = self.controller.access(addr, issued, requestor=who,
                                        is_write=is_write)
        ctx.advance_to(result.finish)
        return result

    def pei_op(self, ctx: Context, addr: int, *, core: int = 0,
               set_ignore: bool = False,
               requestor: Optional[str] = None) -> PEIResult:
        """Blocking PEI round trip (PMU decides the execution site)."""
        who = requestor if requestor is not None else ctx.name
        result = self.pei.execute(addr, ctx.now, core=core, requestor=who,
                                  set_ignore=set_ignore)
        ctx.advance_to(result.finish)
        return result

    def pei_op_async(self, ctx: Context, addr: int, *, core: int = 0,
                     set_ignore: bool = False,
                     requestor: Optional[str] = None) -> PEIResult:
        """Fire-and-forget PEI (result-free operations like ``pim_add``).

        The core pays only the issue slot; the bank-side completion is
        tracked on the context and retired by the next ``ctx.fence()``
        (the PEI paper's execution model for write-type PEIs [67]).
        Host-dispatched PEIs (high locality) execute synchronously — they
        are the cheap cache-hit case.
        """
        who = requestor if requestor is not None else ctx.name
        result = self.pei.execute(addr, ctx.now, core=core, requestor=who,
                                  set_ignore=set_ignore)
        if result.site is ExecutionSite.HOST:
            ctx.advance_to(result.finish)
        else:
            ctx.advance(self.config.pei.issue_cycles)
            ctx.track_completion(result.finish)
        return result

    def pei_op_predicted(self, ctx: Context, addr: int, *, core: int = 0,
                         requestor: Optional[str] = None) -> PEIResult:
        """PEI dispatched by the off-chip predictor instead of the PMU
        (the PnM-OffChip baseline)."""
        if self.offchip_predictor is None:
            raise RuntimeError("call enable_offchip_predictor() first")
        who = requestor if requestor is not None else ctx.name
        predictor = self.offchip_predictor
        site = (ExecutionSite.MEMORY if predictor.predict_offchip(addr)
                else ExecutionSite.HOST)
        result = self.pei.execute(addr, ctx.now, core=core, requestor=who,
                                  force_site=site)
        # Hermes' training signal is data residency, not execution site.
        # A host-dispatched PEI went off-chip iff it reached DRAM; a
        # memory-dispatched PEI *always* touches DRAM, so its ground truth
        # is whether the line was on-chip (inclusive-LLC probe) — the old
        # site-based signal trained every memory-side PEI toward off-chip,
        # letting a mispredicting predictor reinforce its own mistakes.
        if result.site is ExecutionSite.HOST:
            was_offchip = result.kind is not None
        else:
            was_offchip = not self.hierarchy.is_cached(addr)
        predictor.train(addr, was_offchip)
        ctx.advance_to(result.finish)
        return result

    def rowclone(self, ctx: Context, src_addr: int, dst_addr: int, mask: int, *,
                 requestor: Optional[str] = None) -> RowCloneResult:
        """Masked multi-bank RowClone (atomic at the controller)."""
        who = requestor if requestor is not None else ctx.name
        result = self.rowclone_engine.clone(src_addr, dst_addr, mask, ctx.now,
                                            requestor=who)
        ctx.advance_to(result.finish)
        return result

    # ------------------------------------------------------------------
    # Attack support
    # ------------------------------------------------------------------

    def address_of(self, bank: int, row: int, col: int = 0) -> int:
        """Memory-massaging result: the address landing at (bank, row)."""
        return self.controller.address_of(bank, row, col)

    def warm_up(self, addrs: List[int], cores: Optional[List[int]] = None) -> None:
        """Pre-fill TLBs for the given addresses (§5.1 warm-up phase)."""
        targets = cores if cores is not None else list(range(self.config.num_cores))
        for core in targets:
            self.mmus[core].warm_up(addrs)
