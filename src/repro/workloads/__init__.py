"""GraphBIG-style multiprogrammed graph workloads (§6 / Fig. 11).

Five graph kernels (BC, BFS, CC, TC, PR) implemented as real algorithms
over synthetic CSR graphs, instrumented to emit their memory reference
streams; a two-core runner replays two instances of the same kernel on
the same input (sharing DRAM banks, as in the paper's setup) through the
simulated memory system under each row policy.

The paper runs GraphBIG [120] on multi-GB inputs; we scale the graphs
down and size the per-node records so each kernel's cache behaviour
(LLC MPKI ordering: BC < PR < TC < BFS < CC) matches Table/Fig. 11's
characterization — the defense overheads depend on memory intensity and
row locality, not on the absolute graph size.
"""

from repro.workloads.graphs import CSRGraph, generate_graph
from repro.workloads.kernels import (
    KERNELS,
    MemoryRef,
    WorkloadSpec,
    bc_kernel,
    bfs_kernel,
    cc_kernel,
    pagerank_kernel,
    tc_kernel,
    workload_spec,
)
from repro.workloads.runner import (
    DefenseEvaluation,
    RunResult,
    WarmupCache,
    evaluate_defenses,
    fig11_config,
    run_multiprogrammed,
)
from repro.workloads.trace import (
    TraceProfile,
    load_trace,
    profile_trace,
    save_trace,
)

__all__ = [
    "CSRGraph",
    "DefenseEvaluation",
    "KERNELS",
    "MemoryRef",
    "RunResult",
    "TraceProfile",
    "WarmupCache",
    "WorkloadSpec",
    "bc_kernel",
    "bfs_kernel",
    "cc_kernel",
    "evaluate_defenses",
    "fig11_config",
    "generate_graph",
    "load_trace",
    "profile_trace",
    "save_trace",
    "pagerank_kernel",
    "run_multiprogrammed",
    "tc_kernel",
    "workload_spec",
]
