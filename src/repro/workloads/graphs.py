"""Synthetic graphs in CSR form for the Fig. 11 workloads."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class CSRGraph:
    """Compressed-sparse-row graph (undirected edges stored both ways).

    ``offsets`` has ``num_nodes + 1`` entries; node u's neighbors are
    ``edges[offsets[u]:offsets[u+1]]`` (sorted ascending, as GraphBIG's
    CSR loaders produce — TC's intersections rely on this).
    """

    num_nodes: int
    offsets: Tuple[int, ...]
    edges: Tuple[int, ...]

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def neighbors(self, u: int) -> Tuple[int, ...]:
        return self.edges[self.offsets[u]:self.offsets[u + 1]]

    def degree(self, u: int) -> int:
        return self.offsets[u + 1] - self.offsets[u]


def generate_graph(num_nodes: int, avg_degree: int = 8, seed: int = 0,
                   power_law: bool = True) -> CSRGraph:
    """A synthetic graph: preferential-attachment (power-law, the shape of
    GraphBIG's social/web inputs) or uniform-random.

    Deterministic under ``seed``; self-loops and duplicate edges are
    dropped.
    """
    if num_nodes < 2:
        raise ValueError("num_nodes must be >= 2")
    if avg_degree < 1:
        raise ValueError("avg_degree must be >= 1")
    rng = random.Random(seed)
    target_edges = num_nodes * avg_degree // 2
    adjacency: List[set] = [set() for _ in range(num_nodes)]
    # Seed ring keeps the graph connected-ish.
    for u in range(num_nodes):
        v = (u + 1) % num_nodes
        adjacency[u].add(v)
        adjacency[v].add(u)
    endpoints: List[int] = list(range(num_nodes))  # degree-weighted pool
    added = num_nodes
    while added < target_edges:
        u = rng.randrange(num_nodes)
        if power_law:
            v = endpoints[rng.randrange(len(endpoints))]
        else:
            v = rng.randrange(num_nodes)
        if u == v or v in adjacency[u]:
            added += 1  # bounded work even on dense collisions
            continue
        adjacency[u].add(v)
        adjacency[v].add(u)
        endpoints.append(u)
        endpoints.append(v)
        added += 1
    offsets: List[int] = [0]
    edges: List[int] = []
    for u in range(num_nodes):
        neighbors = sorted(adjacency[u])
        edges.extend(neighbors)
        offsets.append(len(edges))
    return CSRGraph(num_nodes=num_nodes, offsets=tuple(offsets),
                    edges=tuple(edges))
