"""The five GraphBIG kernels as instrumented memory-reference generators.

Each kernel runs the real algorithm over a CSR graph and yields a
:class:`MemoryRef` for every data-structure touch: CSR offset/edge reads
(sequential), per-node property reads/writes (random for BFS/CC, streamed
for PR), etc.  Per-node record sizes follow each workload's property
struct so the working sets reproduce the paper's LLC MPKI ordering
(BC 0.57 < PR 1.86 < TC 5.08 < BFS 38.59 < CC 45.2) at simulation scale.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from repro.workloads.graphs import CSRGraph, generate_graph


@dataclass(frozen=True)
class MemoryRef:
    """One memory touch: preceded by ``compute_cycles`` of non-memory work."""

    addr: int
    is_write: bool
    pc: int
    compute_cycles: int


@dataclass(frozen=True)
class Layout:
    """Address-space placement of a kernel's data structures."""

    offsets_base: int = 0x0400_0000
    edges_base: int = 0x0800_0000
    data_base: int = 0x1000_0000
    data2_base: int = 0x1800_0000
    offset_bytes: int = 8
    edge_bytes: int = 8
    node_bytes: int = 64

    def offset_addr(self, u: int) -> int:
        return self.offsets_base + u * self.offset_bytes

    def edge_addr(self, i: int) -> int:
        return self.edges_base + i * self.edge_bytes

    def data_addr(self, u: int) -> int:
        return self.data_base + u * self.node_bytes

    def data2_addr(self, u: int) -> int:
        return self.data2_base + u * self.node_bytes


# PC labels, one per access site, so the prefetchers see stable streams.
_PC = {name: 0x400000 + i * 16 for i, name in enumerate(
    ["offset", "edge", "node_r", "node_w", "aux_r", "aux_w"])}

KernelFn = Callable[..., Iterator[MemoryRef]]


def _ref(layout: Layout, site: str, addr: int, compute: int,
         is_write: bool = False) -> MemoryRef:
    return MemoryRef(addr=addr, is_write=is_write, pc=_PC[site],
                     compute_cycles=compute)


# ---------------------------------------------------------------------------
# Kernels
# ---------------------------------------------------------------------------

def bfs_kernel(graph: CSRGraph, layout: Layout, compute: int = 2,
               source: int = 0) -> Iterator[MemoryRef]:
    """Breadth-first search: sequential CSR scans + random visited checks."""
    visited = [False] * graph.num_nodes
    visited[source] = True
    queue = deque([source])
    while queue:
        u = queue.popleft()
        yield _ref(layout, "offset", layout.offset_addr(u), compute)
        yield _ref(layout, "offset", layout.offset_addr(u + 1), compute)
        for i in range(graph.offsets[u], graph.offsets[u + 1]):
            yield _ref(layout, "edge", layout.edge_addr(i), compute)
            v = graph.edges[i]
            yield _ref(layout, "node_r", layout.data_addr(v), compute)
            if not visited[v]:
                visited[v] = True
                yield _ref(layout, "node_w", layout.data_addr(v), compute,
                           is_write=True)
                queue.append(v)


def pagerank_kernel(graph: CSRGraph, layout: Layout, compute: int = 6,
                    iterations: int = 1,
                    damping: float = 0.85) -> Iterator[MemoryRef]:
    """PageRank: streaming CSR traversal + rank gathers + rank writes."""
    rank = [1.0 / graph.num_nodes] * graph.num_nodes
    for _ in range(iterations):
        new_rank = [0.0] * graph.num_nodes
        for u in range(graph.num_nodes):
            yield _ref(layout, "offset", layout.offset_addr(u), compute)
            total = 0.0
            for i in range(graph.offsets[u], graph.offsets[u + 1]):
                yield _ref(layout, "edge", layout.edge_addr(i), compute)
                v = graph.edges[i]
                yield _ref(layout, "node_r", layout.data_addr(v), compute)
                degree = max(1, graph.degree(v))
                total += rank[v] / degree
            new_rank[u] = (1 - damping) / graph.num_nodes + damping * total
            yield _ref(layout, "aux_w", layout.data2_addr(u), compute,
                       is_write=True)
        rank = new_rank


def cc_kernel(graph: CSRGraph, layout: Layout,
              compute: int = 2) -> Iterator[MemoryRef]:
    """Connected components via union-find: random parent-chain walks."""
    parent = list(range(graph.num_nodes))

    def find(x: int):
        # Path halving: every hop is a random-looking parent read.
        while parent[x] != x:
            yield _ref(layout, "node_r", layout.data_addr(parent[x]), compute)
            parent[x] = parent[parent[x]]
            yield _ref(layout, "node_w", layout.data_addr(x), compute,
                       is_write=True)
            x = parent[x]
        return x

    for u in range(graph.num_nodes):
        for i in range(graph.offsets[u], graph.offsets[u + 1]):
            yield _ref(layout, "edge", layout.edge_addr(i), compute)
            v = graph.edges[i]
            if v < u:
                continue
            root_u = yield from find(u)
            root_v = yield from find(v)
            if root_u != root_v:
                parent[root_v] = root_u
                yield _ref(layout, "node_w", layout.data_addr(root_v),
                           compute, is_write=True)


def tc_kernel(graph: CSRGraph, layout: Layout,
              compute: int = 6) -> Iterator[MemoryRef]:
    """Triangle counting: sorted-adjacency intersections (merge scans)."""
    triangles = 0
    for u in range(graph.num_nodes):
        yield _ref(layout, "offset", layout.offset_addr(u), compute)
        for i in range(graph.offsets[u], graph.offsets[u + 1]):
            yield _ref(layout, "edge", layout.edge_addr(i), compute)
            v = graph.edges[i]
            if v <= u:
                continue
            # Merge-intersect adj(u) and adj(v): two sequential scans.
            pi, pj = graph.offsets[u], graph.offsets[v]
            end_i, end_j = graph.offsets[u + 1], graph.offsets[v + 1]
            while pi < end_i and pj < end_j:
                yield _ref(layout, "edge", layout.edge_addr(pi), compute)
                yield _ref(layout, "edge", layout.edge_addr(pj), compute)
                a, b = graph.edges[pi], graph.edges[pj]
                if a == b:
                    if a > v:
                        triangles += 1
                    pi += 1
                    pj += 1
                elif a < b:
                    pi += 1
                else:
                    pj += 1


def bc_kernel(graph: CSRGraph, layout: Layout, compute: int = 16,
              num_sources: int = 2) -> Iterator[MemoryRef]:
    """Betweenness centrality (Brandes): BFS + dependency accumulation
    from a few sources over a small, cache-resident working set."""
    for source in range(num_sources):
        sigma = [0] * graph.num_nodes
        dist = [-1] * graph.num_nodes
        sigma[source] = 1
        dist[source] = 0
        order: List[int] = []
        queue = deque([source])
        while queue:
            u = queue.popleft()
            order.append(u)
            yield _ref(layout, "offset", layout.offset_addr(u), compute)
            for i in range(graph.offsets[u], graph.offsets[u + 1]):
                yield _ref(layout, "edge", layout.edge_addr(i), compute)
                v = graph.edges[i]
                yield _ref(layout, "node_r", layout.data_addr(v), compute)
                if dist[v] < 0:
                    dist[v] = dist[u] + 1
                    queue.append(v)
                if dist[v] == dist[u] + 1:
                    sigma[v] += sigma[u]
                    yield _ref(layout, "node_w", layout.data_addr(v),
                               compute, is_write=True)
        delta = [0.0] * graph.num_nodes
        for u in reversed(order):
            yield _ref(layout, "aux_r", layout.data2_addr(u), compute)
            for i in range(graph.offsets[u], graph.offsets[u + 1]):
                v = graph.edges[i]
                if dist[v] == dist[u] + 1 and sigma[v]:
                    delta[u] += sigma[u] / sigma[v] * (1 + delta[v])
            yield _ref(layout, "aux_w", layout.data2_addr(u), compute,
                       is_write=True)


# ---------------------------------------------------------------------------
# Workload specifications (Fig. 11's five applications)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WorkloadSpec:
    """One Fig. 11 workload: kernel + scaled input + memory layout.

    ``node_bytes``/``edge_bytes`` pad the per-element records so the
    random (node-property) and streaming (CSR-edge) footprints scale
    against the Fig. 11 experiment's cache hierarchy the way the paper's
    multi-GB inputs scale against Table 2's — the working-set-to-LLC
    ratios, not the absolute sizes, drive the defense overheads.
    """

    name: str
    kernel: KernelFn
    num_nodes: int
    avg_degree: int
    node_bytes: int
    edge_bytes: int
    compute_cycles: int
    paper_mpki: float
    seed: int = 0

    def build_graph(self) -> CSRGraph:
        return generate_graph(self.num_nodes, self.avg_degree, seed=self.seed)

    def layout(self) -> Layout:
        return Layout(node_bytes=self.node_bytes, edge_bytes=self.edge_bytes)

    def refs(self, graph: Optional[CSRGraph] = None,
             max_refs: Optional[int] = None) -> List[MemoryRef]:
        """Materialize the reference stream (optionally truncated)."""
        g = graph if graph is not None else self.build_graph()
        stream: List[MemoryRef] = []
        for ref in self.kernel(g, self.layout(), compute=self.compute_cycles):
            stream.append(ref)
            if max_refs is not None and len(stream) >= max_refs:
                break
        return stream


KERNELS: Dict[str, WorkloadSpec] = {
    # BC: tiny working set, compute-heavy -> cache-resident (MPKI 0.57).
    "BC": WorkloadSpec(name="BC", kernel=bc_kernel, num_nodes=1200,
                       avg_degree=8, node_bytes=32, edge_bytes=8,
                       compute_cycles=16, paper_mpki=0.57),
    # BFS: fat visited records + streamed CSR, little compute (38.59).
    "BFS": WorkloadSpec(name="BFS", kernel=bfs_kernel, num_nodes=4000,
                        avg_degree=8, node_bytes=320, edge_bytes=48,
                        compute_cycles=2, paper_mpki=38.59),
    # CC: union-find chains over fat parent records + edge stream (45.2).
    "CC": WorkloadSpec(name="CC", kernel=cc_kernel, num_nodes=4000,
                       avg_degree=8, node_bytes=1024, edge_bytes=64,
                       compute_cycles=2, paper_mpki=45.2),
    # TC: sequential intersections over a streamed edge array (5.08).
    "TC": WorkloadSpec(name="TC", kernel=tc_kernel, num_nodes=4000,
                       avg_degree=8, node_bytes=64, edge_bytes=96,
                       compute_cycles=6, paper_mpki=5.08),
    # PR: streaming edge array with cache-resident ranks (1.86).
    "PR": WorkloadSpec(name="PR", kernel=pagerank_kernel, num_nodes=3000,
                       avg_degree=10, node_bytes=32, edge_bytes=64,
                       compute_cycles=6, paper_mpki=1.86),
}


def workload_spec(name: str) -> WorkloadSpec:
    """Spec by name (``BC``/``BFS``/``CC``/``TC``/``PR``)."""
    try:
        return KERNELS[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {sorted(KERNELS)}"
        ) from None
