"""Benign PiM applications: PEI-offloaded graph analytics.

PEI's flagship use case [67] is graph processing: streaming CSR traversal
stays on the host (cache-friendly), while low-locality per-vertex gathers
(``pim_add`` on the rank array) execute at the bank PCUs.  The PMU's
locality monitor adaptively keeps *hot* vertices on the host, where the
caches win.

This module implements host-only and PEI-offloaded PageRank over the same
graphs the Fig. 11 workloads use — both to validate that our PEI engine
actually accelerates (the paper's premise: PiM is adopted *because* it
wins), and to provide a realistic benign victim whose PEI traffic
coexists with the attacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.scheduler import Context, Scheduler
from repro.system import System
from repro.workloads.graphs import CSRGraph
from repro.workloads.kernels import Layout

#: Non-memory work per processed edge (rank scaling, accumulate).
EDGE_COMPUTE_CYCLES = 4


@dataclass(frozen=True)
class PimAppResult:
    """Outcome of one PageRank execution."""

    mode: str
    cycles: int
    edges_processed: int
    pei_memory_ops: int
    pei_host_ops: int
    hierarchy_accesses: int

    @property
    def cycles_per_edge(self) -> float:
        if not self.edges_processed:
            return 0.0
        return self.cycles / self.edges_processed


def run_pagerank(system: System, graph: CSRGraph,
                 layout: Optional[Layout] = None, mode: str = "host",
                 iterations: int = 1, core: int = 0) -> PimAppResult:
    """One PageRank pass in ``host`` (all loads through the caches) or
    ``pei`` mode (rank gathers offloaded as PIM-enabled instructions).

    The CSR arrays (offsets, edges) stream through the caches in both
    modes; only the random rank gathers differ — exactly the split the
    PEI paper's locality analysis prescribes.
    """
    if mode not in ("host", "pei"):
        raise ValueError("mode must be 'host' or 'pei'")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    layout = layout or Layout(node_bytes=64, edge_bytes=16)
    pei_before_mem = system.pei.memory_executions
    pei_before_host = system.pei.host_executions
    hier_before = system.hierarchy.stats.demand_accesses
    stats = {"cycles": 0, "edges": 0}

    def body(ctx: Context, sys_: System):
        pc_offsets, pc_edges, pc_rank = 0x500, 0x510, 0x520
        start = ctx.now
        for _ in range(iterations):
            for u in range(graph.num_nodes):
                sys_.load(ctx, core=core, addr=layout.offset_addr(u),
                          pc=pc_offsets, requestor="pagerank")
                for i in range(graph.offsets[u], graph.offsets[u + 1]):
                    sys_.load(ctx, core=core, addr=layout.edge_addr(i),
                              pc=pc_edges, requestor="pagerank")
                    v = graph.edges[i]
                    rank_addr = layout.data_addr(v)
                    if mode == "pei":
                        # pim_add: fire-and-forget accumulate at the bank;
                        # per-vertex gathers overlap across banks.
                        sys_.pei_op_async(ctx, rank_addr, core=core,
                                          requestor="pagerank")
                    else:
                        sys_.load(ctx, core=core, addr=rank_addr,
                                  pc=pc_rank, requestor="pagerank")
                    ctx.advance(EDGE_COMPUTE_CYCLES)
                    stats["edges"] += 1
                # The vertex's new rank depends on every gather: fence.
                ctx.fence()
                yield None
        stats["cycles"] = ctx.now - start

    sched = Scheduler()
    sched.spawn(body, system, name=f"pagerank-{mode}")
    sched.run()
    return PimAppResult(
        mode=mode,
        cycles=stats["cycles"],
        edges_processed=stats["edges"],
        pei_memory_ops=system.pei.memory_executions - pei_before_mem,
        pei_host_ops=system.pei.host_executions - pei_before_host,
        hierarchy_accesses=(system.hierarchy.stats.demand_accesses
                            - hier_before),
    )


def pei_speedup(host: PimAppResult, pei: PimAppResult) -> float:
    """Host cycles over PEI cycles (> 1 means the offload won)."""
    if pei.cycles <= 0:
        return 0.0
    return host.cycles / pei.cycles
