"""Two-core multiprogrammed workload runner and defense evaluation (Fig. 11).

The Fig. 11 setup (§6): a 2-core system where each core runs a different
instance of the *same* application on the *same* input (so they share
DRAM banks), evaluated under the open-row baseline, the closed-row policy
(CRP) and constant-time DRAM access (CTD).  The runner models simple
in-order cores: each memory reference stalls the issuing core for its
full hierarchy latency, with the kernel's compute cycles in between.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.config import SystemConfig
from repro.sim.snapshot import SystemSnapshot
from repro.system import System
from repro.workloads.kernels import MemoryRef, WorkloadSpec, workload_spec


@dataclass
class RunResult:
    """Timing and cache statistics of one multiprogrammed run."""

    cycles: int
    instructions: int
    refs: int
    llc_misses: int

    @property
    def mpki(self) -> float:
        """LLC misses per kilo-instruction (Fig. 11's characterization)."""
        if self.instructions == 0:
            return 0.0
        return self.llc_misses * 1000.0 / self.instructions

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


def _warm(system: System, streams: Sequence[Sequence[MemoryRef]]) -> None:
    """One warm-up replay, then rebase the clock and zero the counters so
    the measured replay starts from cycle 0 on a warm machine (§5.1)."""
    _replay(system, streams)
    system.controller.rebase_time()
    system.hierarchy.rebase_time()
    system.reset_stats()


class WarmupCache:
    """Reuses warm machine state across runs sharing a configuration.

    The warm-up replay dominates a multiprogrammed run's cost, and its end
    state depends only on (system configuration, reference streams).  The
    cache runs that replay once per distinct key, snapshots the warm
    machine (:meth:`repro.system.System.snapshot`), and restores the
    snapshot into every later system with an equal configuration.

    The default key is the streams' object identities, so it only matches
    when the caller replays the *same* stream objects; pass an explicit
    ``key`` (e.g. ``(workload_name, max_refs)``) to share warm state
    across runs that rebuild equal streams from scratch.  The system's
    ``SystemConfig`` is always part of the key — warm state captured under
    one row policy or geometry never leaks into another.

    Explicitly-keyed entries additionally persist through the process-wide
    :mod:`repro.exp.warmstore` (when one is active): the post-warm-up
    snapshot is written to disk under recipe ``("warmup", key)`` and later
    runs — including runs in other processes — restore it instead of
    replaying the warm-up.  Identity-keyed entries stay memory-only (an
    ``id()`` is meaningless across processes).  ``REPRO_NO_WARMSTORE=1``
    disables the disk layer.
    """

    def __init__(self) -> None:
        self._snapshots: Dict[Tuple[SystemConfig, Hashable],
                              SystemSnapshot] = {}

    def __len__(self) -> int:
        return len(self._snapshots)

    def warm(self, system: System, streams: Sequence[Sequence[MemoryRef]],
             *, key: Optional[Hashable] = None) -> bool:
        """Bring ``system`` to its post-warm-up state; True on a cache hit
        (state restored from a snapshot instead of replayed)."""
        from repro.exp import warmstore

        stream_key = key if key is not None else tuple(id(s) for s in streams)
        cache_key = (system.config, stream_key)
        snap = self._snapshots.get(cache_key)
        if snap is not None:
            system.restore(snap)
            if warmstore.enabled():
                warmstore.record_event("hits")
            return True
        store = recipe = None
        if key is not None and warmstore.enabled():
            store = warmstore.current()
        if store is not None:
            recipe = ("warmup", key)
            snap = store.load_snapshot(system.config, recipe)
            if snap is not None:
                system.restore(snap)
                self._snapshots[cache_key] = snap
                return True
        _warm(system, streams)
        snap = system.snapshot()
        self._snapshots[cache_key] = snap
        if store is not None:
            store.store_snapshot(snap, recipe)
        elif warmstore.enabled():
            warmstore.record_event("misses")
        return False


def run_multiprogrammed(system: System,
                        streams: Sequence[Sequence[MemoryRef]],
                        warmup: bool = True,
                        warm_cache: Optional[WarmupCache] = None,
                        warm_key: Optional[Hashable] = None) -> RunResult:
    """Replay one reference stream per core; returns combined stats.

    Cores advance independently (event-driven, lowest-time-first), so
    their DRAM requests interleave in the shared banks — the interference
    that makes the open-row policy's behaviour policy-dependent.

    With ``warmup`` (the default, matching §5.1's warm-up methodology)
    the streams are replayed once beforehand to populate caches and TLBs;
    only the second, warm replay is measured.  Passing a
    :class:`WarmupCache` replaces repeated warm-up replays with
    snapshot restores for runs sharing a (config, ``warm_key``) pair.
    """
    if warmup:
        if warm_cache is not None:
            warm_cache.warm(system, streams, key=warm_key)
        else:
            _warm(system, streams)
    return _replay(system, streams)


def _replay(system: System,
            streams: Sequence[Sequence[MemoryRef]]) -> RunResult:
    if len(streams) > system.config.hierarchy.num_cores:
        raise ValueError("more streams than cores")
    cursors = [0] * len(streams)
    times = [0] * len(streams)
    instructions = 0
    refs = 0
    llc_misses = 0
    access = system.hierarchy.access
    requestors = [f"core{core}" for core in range(len(streams))]
    active = [core for core, stream in enumerate(streams) if stream]
    key = times.__getitem__
    while len(active) > 1:
        core = min(active, key=key)
        ref = streams[core][cursors[core]]
        start = times[core] + ref.compute_cycles
        result = access(core, ref.addr, start, is_write=ref.is_write,
                        pc=ref.pc, requestor=requestors[core])
        times[core] = result.finish
        instructions += 1 + ref.compute_cycles  # 1-IPC compute model
        refs += 1
        if result.hit_level == 0:
            llc_misses += 1
        cursors[core] += 1
        if cursors[core] >= len(streams[core]):
            active.remove(core)
    if active:
        # One runnable core left: no interleaving decisions remain, so
        # drain its tail in a tight loop (single-stream runs take this
        # path for the whole replay).
        core = active[0]
        stream = streams[core]
        requestor = requestors[core]
        now = times[core]
        for i in range(cursors[core], len(stream)):
            ref = stream[i]
            result = access(core, ref.addr, now + ref.compute_cycles,
                            is_write=ref.is_write, pc=ref.pc,
                            requestor=requestor)
            now = result.finish
            instructions += 1 + ref.compute_cycles
            refs += 1
            if result.hit_level == 0:
                llc_misses += 1
        times[core] = now
    return RunResult(cycles=max(times) if times else 0,
                     instructions=instructions, refs=refs,
                     llc_misses=llc_misses)


@dataclass
class DefenseEvaluation:
    """Fig. 11 data for one workload: cycles per policy + overheads."""

    workload: str
    results: Dict[str, RunResult]
    paper_mpki: float = 0.0

    def overhead(self, defense: str) -> float:
        """Slowdown of ``defense`` relative to the open-row baseline."""
        base = self.results["open"].cycles
        if base == 0:
            return 0.0
        return self.results[defense].cycles / base - 1.0

    @property
    def measured_mpki(self) -> float:
        return self.results["open"].mpki

    def row(self) -> Dict[str, float]:
        return {
            "workload": self.workload,
            "mpki": round(self.measured_mpki, 2),
            "crp_overhead": round(self.overhead("crp"), 4),
            "ctd_overhead": round(self.overhead("ctd"), 4),
        }


def fig11_config() -> SystemConfig:
    """The scaled Fig. 11 system: a 2-core slice of Table 2.

    The cache hierarchy shrinks with the scaled-down graph inputs so the
    working-set-to-LLC ratios match the paper's multi-GB-inputs-vs-8MB-LLC
    regime (see :mod:`repro.workloads.kernels`)."""
    from dataclasses import replace

    from repro.cache import HierarchyConfig

    base = SystemConfig.paper_default()
    hierarchy = HierarchyConfig(num_cores=2, l2_size_kb=256,
                                llc_size_mb=1.0, llc_latency=32)
    return replace(base, num_cores=2, hierarchy=hierarchy)


def evaluate_defenses(name: str, base_config: Optional[SystemConfig] = None,
                      max_refs: int = 60_000,
                      policies: Sequence[str] = ("open", "crp", "ctd"),
                      warm_cache: Optional[WarmupCache] = None,
                      stream: Optional[Sequence[MemoryRef]] = None,
                      ) -> DefenseEvaluation:
    """Run one Fig. 11 workload under each row policy.

    Two instances of the same kernel on the same input share the memory
    system; ``max_refs`` bounds each instance's replayed stream so the
    sweep completes at simulation scale.  A shared :class:`WarmupCache`
    makes repeated evaluations of the same workload pay one warm-up per
    (policy, workload) instead of one per call.  ``stream`` lets callers
    supply the workload's prebuilt reference stream (e.g. restored from
    the warm store); it must equal ``spec.refs(...)`` for (``name``,
    ``max_refs``) or results will not match the from-scratch run.
    """
    spec = workload_spec(name)
    if stream is None:
        graph = spec.build_graph()
        stream = spec.refs(graph=graph, max_refs=max_refs)
    base = base_config or fig11_config()
    results: Dict[str, RunResult] = {}
    for policy in policies:
        system = System(base.with_defense(policy))
        results[policy] = run_multiprogrammed(
            system, [stream, stream], warm_cache=warm_cache,
            warm_key=(spec.name, max_refs))
    return DefenseEvaluation(workload=spec.name, results=results,
                             paper_mpki=spec.paper_mpki)
