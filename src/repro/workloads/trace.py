"""Memory-trace analysis: the locality metrics behind Fig. 11.

The §6 defense overheads are functions of each workload's *memory
behaviour*: how many accesses reach DRAM, how much row-buffer locality
they carry, and how they spread across banks.  This module computes those
characteristics directly from a reference stream (plus serialization for
sharing traces between runs), so workload scaling decisions are auditable
rather than folklore.
"""

from __future__ import annotations

import json
from collections import Counter, OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.stats import percentile as _percentile
from repro.dram.address import AddressMapping, DRAMGeometry, make_mapping
from repro.workloads.kernels import MemoryRef


@dataclass
class TraceProfile:
    """Locality characteristics of one reference stream."""

    refs: int
    writes: int
    distinct_lines: int
    footprint_bytes: int
    row_switches: int
    bank_histogram: Dict[int, int]
    total_banks: int
    reuse_distance_p50: Optional[float]
    reuse_distance_p90: Optional[float]

    @property
    def write_fraction(self) -> float:
        return self.writes / self.refs if self.refs else 0.0

    @property
    def row_locality(self) -> float:
        """Fraction of DRAM-visible line transitions that stay in the open
        row of their bank (the open-row policy's win; CRP forfeits it)."""
        if self.refs <= 1:
            return 0.0
        return 1.0 - self.row_switches / max(1, self.refs - 1)

    @property
    def bank_balance(self) -> float:
        """1.0 = perfectly even use of every bank; near 0 = pileup on a
        few banks (forfeits bank-level parallelism)."""
        counts = list(self.bank_histogram.values())
        if not counts:
            return 0.0
        peak = max(counts)
        ideal = sum(counts) / max(1, self.total_banks)
        return min(1.0, ideal / peak) if peak else 0.0

    def summary(self) -> str:
        return (f"{self.refs} refs ({self.write_fraction:.0%} writes), "
                f"{self.footprint_bytes / 1024:.0f} KiB footprint, "
                f"row locality {self.row_locality:.2f}, "
                f"bank balance {self.bank_balance:.2f}")


def profile_trace(refs: Sequence[MemoryRef],
                  geometry: Optional[DRAMGeometry] = None,
                  mapping: str = "row",
                  line_bytes: int = 64,
                  reuse_window: int = 4096) -> TraceProfile:
    """Compute a :class:`TraceProfile` for a reference stream.

    Row-switch accounting tracks the per-bank open row over the stream
    (as an open-row DRAM would); reuse distances are per-line, counted in
    distinct intervening lines (LRU stack distance, windowed for cost).
    """
    geom = geometry or DRAMGeometry()
    mapper: AddressMapping = make_mapping(mapping, geom)
    capacity = geom.capacity_bytes
    open_rows: Dict[int, int] = {}
    bank_histogram: Counter = Counter()
    lines_seen: Dict[int, int] = {}
    reuse_distances: List[int] = []
    stack: "OrderedDict[int, None]" = OrderedDict()
    writes = 0
    row_switches = 0
    for i, ref in enumerate(refs):
        addr = ref.addr % capacity
        if ref.is_write:
            writes += 1
        loc = mapper.decode(addr)
        previous = open_rows.get(loc.bank)
        if previous is not None and previous != loc.row:
            row_switches += 1
        open_rows[loc.bank] = loc.row
        bank_histogram[loc.bank] += 1
        line = addr // line_bytes
        if line in stack:
            distance = 0
            for other in reversed(stack):
                if other == line:
                    break
                distance += 1
            reuse_distances.append(distance)
            del stack[line]
        stack[line] = None
        while len(stack) > reuse_window:
            stack.popitem(last=False)
        lines_seen[line] = lines_seen.get(line, 0) + 1
    def percentile(values: List[int], fraction: float) -> Optional[float]:
        # Shared interpolated percentile (repro.analysis.stats); empty
        # reuse-distance samples stay None rather than raising.
        return _percentile(values, fraction) if values else None
    return TraceProfile(
        refs=len(refs),
        writes=writes,
        distinct_lines=len(lines_seen),
        footprint_bytes=len(lines_seen) * line_bytes,
        row_switches=row_switches,
        bank_histogram=dict(bank_histogram),
        total_banks=geom.num_banks,
        reuse_distance_p50=percentile(reuse_distances, 0.5),
        reuse_distance_p90=percentile(reuse_distances, 0.9),
    )


# ---------------------------------------------------------------------------
# Serialization (share traces between runs / tools)
# ---------------------------------------------------------------------------

def save_trace(refs: Iterable[MemoryRef], path: str) -> int:
    """Write a reference stream as JSON lines; returns the count."""
    count = 0
    with open(path, "w") as handle:
        for ref in refs:
            handle.write(json.dumps({
                "addr": ref.addr, "w": int(ref.is_write),
                "pc": ref.pc, "c": ref.compute_cycles}) + "\n")
            count += 1
    return count


def load_trace(path: str) -> List[MemoryRef]:
    """Read a reference stream written by :func:`save_trace`."""
    refs: List[MemoryRef] = []
    with open(path) as handle:
        for line_no, raw in enumerate(handle, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                record = json.loads(raw)
                refs.append(MemoryRef(addr=record["addr"],
                                      is_write=bool(record["w"]),
                                      pc=record["pc"],
                                      compute_cycles=record["c"]))
            except (KeyError, ValueError) as exc:
                raise ValueError(f"{path}:{line_no}: bad trace record") from exc
    return refs
