"""Tests for analysis helpers: stats, tables, and FEC coding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    decode_stream,
    encode_stream,
    fec_assessment,
    format_table,
    hamming74_decode,
    hamming74_encode,
    split_by_bit,
    summarize_latencies,
)
from repro.analysis.report import ResultTable


# ---------------------------------------------------------------------------
# Stats
# ---------------------------------------------------------------------------

def test_summarize_latencies_basic():
    stats = summarize_latencies([10, 20, 30, 40])
    assert stats.count == 4
    assert stats.mean == 25
    assert stats.minimum == 10
    assert stats.maximum == 40
    assert stats.p50 == 25
    assert "n=4" in stats.summary()


def test_summarize_latencies_single_value():
    stats = summarize_latencies([7])
    assert stats.p50 == 7
    assert stats.stdev == 0


def test_summarize_empty_rejected():
    with pytest.raises(ValueError):
        summarize_latencies([])


def test_split_by_bit():
    zeros, ones = split_by_bit([10, 20, 30], [0, 1, 0])
    assert zeros == [10, 30]
    assert ones == [20]
    with pytest.raises(ValueError):
        split_by_bit([1], [0, 1])


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------

def test_format_table_alignment():
    text = format_table(["a", "long_header"], [[1, 2], [333, 4]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "long_header" in lines[1]
    assert len({len(line) for line in lines[1:]}) <= 2  # aligned rows


def test_format_table_empty_rows():
    text = format_table(["col_a", "col_b"], [])
    lines = text.splitlines()
    assert lines[0].split(" | ") == ["col_a", "col_b"]
    assert len(lines) == 2  # header + rule, nothing else


def test_format_table_mixed_types_align():
    text = format_table(["name", "value"],
                        [["x", 1], ["longer-name", 2.5], ["y", None]])
    lines = text.splitlines()
    assert len({len(line) for line in lines}) == 1  # all lines same width
    assert "None" in lines[-1]
    assert "2.5" in text


def test_format_markdown_table_escapes_pipes():
    from repro.analysis import format_markdown_table
    text = format_markdown_table(["h1", "h2"], [["a|b", 1]])
    lines = text.splitlines()
    assert lines[0] == "| h1 | h2 |"
    assert lines[1] == "| --- | --- |"
    assert "a\\|b" in lines[2]


def test_format_markdown_table_empty_rows():
    from repro.analysis import format_markdown_table
    assert format_markdown_table(["x"], []).splitlines() == ["| x |",
                                                            "| --- |"]


def test_result_table_empty_emit(tmp_path):
    table = ResultTable("empty", ["a", "b"], output_dir=str(tmp_path))
    text = table.emit()
    assert "a" in text
    assert (tmp_path / "empty.txt").exists()


def test_result_table_row_validation(tmp_path):
    table = ResultTable("t", ["x", "y"], output_dir=str(tmp_path))
    table.add(1, 2)
    with pytest.raises(ValueError):
        table.add(1)
    table.add_mapping({"x": 3, "y": 4})
    text = table.emit()
    assert (tmp_path / "t.txt").read_text().strip() == text.strip()


# ---------------------------------------------------------------------------
# Hamming(7,4)
# ---------------------------------------------------------------------------

def test_hamming_roundtrip_clean():
    for value in range(16):
        nibble = [(value >> i) & 1 for i in range(4)]
        assert hamming74_decode(hamming74_encode(nibble)) == nibble


@given(value=st.integers(min_value=0, max_value=15),
       flip=st.integers(min_value=0, max_value=6))
@settings(max_examples=112)
def test_hamming_corrects_any_single_error(value, flip):
    nibble = [(value >> i) & 1 for i in range(4)]
    codeword = hamming74_encode(nibble)
    codeword[flip] ^= 1
    assert hamming74_decode(codeword) == nibble


def test_hamming_validation():
    with pytest.raises(ValueError):
        hamming74_encode([1, 0, 1])
    with pytest.raises(ValueError):
        hamming74_decode([1] * 6)


def test_stream_roundtrip_with_padding():
    bits = [1, 0, 1, 1, 0, 1]  # not a multiple of 4
    encoded = encode_stream(bits)
    assert len(encoded) % 7 == 0
    decoded = decode_stream(encoded)
    assert decoded[:6] == bits


def test_stream_decode_validation():
    with pytest.raises(ValueError):
        decode_stream([1] * 8)


# ---------------------------------------------------------------------------
# FEC goodput
# ---------------------------------------------------------------------------

def test_fec_noiseless_costs_only_rate():
    a = fec_assessment(14.0, 0.0)
    assert a.goodput_mbps == pytest.approx(14.0 * 4 / 7)
    assert a.residual_error_rate == 0.0


def test_fec_improves_reliability_at_bandwidth_cost():
    a = fec_assessment(5.27, 0.05)  # the DMA channel's regime
    assert a.residual_error_rate < 0.05
    assert a.goodput_mbps < 5.27
    assert "goodput" in a.summary()


def test_fec_validation():
    with pytest.raises(ValueError):
        fec_assessment(-1.0, 0.1)
    with pytest.raises(ValueError):
        fec_assessment(1.0, 1.5)


# ---------------------------------------------------------------------------
# ASCII figures
# ---------------------------------------------------------------------------

def test_bar_chart_scales_to_peak():
    from repro.analysis import bar_chart
    text = bar_chart([("a", 10.0), ("b", 5.0)], width=10, title="T",
                     unit=" Mb/s")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert lines[1].count("#") == 10
    assert lines[2].count("#") == 5
    assert "Mb/s" in lines[1]


def test_bar_chart_edge_cases():
    from repro.analysis import bar_chart
    assert bar_chart([], title="empty") == "empty"
    text = bar_chart([("zero", 0.0)])
    assert "zero" in text
    with pytest.raises(ValueError):
        bar_chart([("a", 1.0)], width=2)


def test_grouped_bar_chart_renders_all_series():
    from repro.analysis import grouped_bar_chart
    text = grouped_bar_chart([("BFS", {"crp": 0.19, "ctd": 0.27}),
                              ("PR", {"crp": 0.46, "ctd": 0.47})],
                             title="fig11", unit="x")
    assert "BFS" in text and "PR" in text
    assert text.count("crp") == 2
    assert text.count("ctd") == 2


def test_latency_histogram_marks_threshold():
    from repro.analysis import latency_histogram
    text = latency_histogram([90, 95, 100, 180, 185], bucket_cycles=10,
                             threshold=150, title="fig7")
    assert "threshold" in text
    # hits appear before the marker, conflicts after
    marker_at = text.index("threshold")
    assert text.index("90") < marker_at < text.index("180")


def test_latency_histogram_validation():
    from repro.analysis import latency_histogram
    assert latency_histogram([], title="x") == "x"
    with pytest.raises(ValueError):
        latency_histogram([1], bucket_cycles=0)
