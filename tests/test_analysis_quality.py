"""Tests for channel-quality analytics (repro.analysis.quality) and the
shared Welch-t / percentile statistics."""

import json

import pytest

from repro import System, SystemConfig
from repro.analysis import (
    TVLA_T_THRESHOLD,
    bin_latencies,
    channel_quality,
    mutual_information_bits,
    percentile,
    welch_t_from_summary,
    welch_t_stat,
    wilson_interval,
)
from repro.attacks import ImpactPnmChannel


# ---------------------------------------------------------------------------
# Wilson interval
# ---------------------------------------------------------------------------

def test_wilson_no_trials_is_vacuous():
    assert wilson_interval(0, 0) == (0.0, 1.0)


def test_wilson_zero_errors_upper_bound():
    low, high = wilson_interval(0, 100)
    assert low == 0.0
    # z^2 / (n + z^2) for successes=0
    assert high == pytest.approx(1.96 ** 2 / (100 + 1.96 ** 2))


def test_wilson_half_is_symmetric():
    low, high = wilson_interval(50, 100)
    assert low == pytest.approx(1 - high)
    assert low < 0.5 < high


def test_wilson_validation():
    with pytest.raises(ValueError):
        wilson_interval(5, 3)
    with pytest.raises(ValueError):
        wilson_interval(-1, 3)


# ---------------------------------------------------------------------------
# Percentile (shared helper)
# ---------------------------------------------------------------------------

def test_percentile_interpolates():
    assert percentile([1, 2, 3, 4], 0.5) == pytest.approx(2.5)
    assert percentile([4, 1, 3, 2], 0.0) == 1
    assert percentile([4, 1, 3, 2], 1.0) == 4


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 0.5)
    with pytest.raises(ValueError):
        percentile([1], 1.5)


# ---------------------------------------------------------------------------
# Welch's t
# ---------------------------------------------------------------------------

def test_welch_t_separated_samples_leak():
    t = welch_t_stat([200, 201, 202, 199], [100, 101, 99, 100])
    assert t.t > TVLA_T_THRESHOLD
    assert t.n_a == 4 and t.n_b == 4
    assert t.dof > 0


def test_welch_t_identical_samples_do_not_leak():
    t = welch_t_stat([100, 101, 99], [100, 101, 99])
    assert abs(t.t) < TVLA_T_THRESHOLD


def test_welch_t_zero_variance_stays_finite():
    """Deterministic simulations produce constant latencies per bit; the
    timer-quantization variance floor must keep t finite (JSON-able)."""
    t = welch_t_stat([200] * 8, [100] * 8)
    assert t.t > TVLA_T_THRESHOLD
    assert t.t < float("inf")
    json.dumps(t.t)


def test_welch_t_small_samples_are_zero():
    assert welch_t_stat([1], [2, 3]).t == 0.0
    assert welch_t_stat([], []).t == 0.0


def test_welch_t_from_summary_degenerate_cases():
    assert welch_t_from_summary(1.0, 0.0, 0, 0.0, 0.0, 10) == 0.0
    assert welch_t_from_summary(1.0, 0.0, 5, 1.0, 0.0, 5) == 0.0


def test_welch_t_from_summary_bernoulli():
    # All-miss process vs a 5% benign baseline: unambiguous.
    t = welch_t_from_summary(1.0, 0.0, 100, 0.05, 0.05 * 0.95, 10_000)
    assert t > TVLA_T_THRESHOLD


# ---------------------------------------------------------------------------
# Binning and mutual information
# ---------------------------------------------------------------------------

def test_bin_latencies_collapses_ties():
    assert bin_latencies([], bins=4) == []
    assert bin_latencies([7, 7, 7, 7], bins=4) == [0, 0, 0, 0]
    bins = bin_latencies([100, 100, 200, 200], bins=2)
    assert bins[0] == bins[1] != bins[2] == bins[3]
    with pytest.raises(ValueError):
        bin_latencies([1], bins=0)


def test_mutual_information_perfect_and_independent():
    assert mutual_information_bits([0, 1, 0, 1],
                                   [0, 1, 0, 1]) == pytest.approx(1.0)
    assert mutual_information_bits([0, 0, 1, 1],
                                   [5, 5, 5, 5]) == pytest.approx(0.0)
    assert mutual_information_bits([], []) == 0.0
    with pytest.raises(ValueError):
        mutual_information_bits([0], [1, 2])


# ---------------------------------------------------------------------------
# channel_quality
# ---------------------------------------------------------------------------

def test_channel_quality_clean_separated_channel():
    sent = [0, 1, 0, 1, 0, 1]
    lat = [100 if b == 0 else 200 for b in sent]
    q = channel_quality(sent, sent, lat, threshold_cycles=150,
                       cycles=6000, cpu_hz=1e9)
    assert q.ber == 0.0
    assert q.ber_ci95[0] == 0.0 and q.ber_ci95[1] < 0.5
    assert q.mutual_information_bits == pytest.approx(1.0)
    assert q.capacity_mbps == pytest.approx(1.0)  # 1 bit/symbol at 1 Mb/s
    assert q.leaks
    assert q.eye_gap == 100
    assert q.threshold_margins() == (50, 50)
    json.dumps(q.to_dict())  # everything JSON-able


def test_channel_quality_without_latencies_degrades():
    q = channel_quality([0, 1, 1, 0], [0, 1, 0, 0])
    assert q.bits == 4 and q.errors == 1
    assert q.leakage.t == 0.0 and not q.leaks
    assert q.eye_gap is None and q.zero_latency is None
    assert q.threshold_margins() is None
    assert q.mutual_information_bits > 0  # confusion-matrix fallback


def test_channel_quality_validates_alignment():
    with pytest.raises(ValueError):
        channel_quality([0, 1], [0])


def test_channel_result_quality_end_to_end():
    channel = ImpactPnmChannel(System(SystemConfig.paper_default()))
    result = channel.transmit_random(32, seed=7)
    q = result.quality(channel.threshold_cycles)
    assert q.bits == 32
    assert q.ber == result.error_rate
    assert q.leaks  # the undefended channel leaks by construction
    assert q.capacity_mbps > 0
    assert q.threshold_cycles == channel.threshold_cycles
