"""Integration tests for the baseline channels: DRAMA, DMA, PnM-OffChip,
Streamline/analytical, §3.3 attacks, and Table 1 primitives."""

from dataclasses import replace

import pytest

from repro import System, SystemConfig
from repro.attacks import (
    TABLE1,
    BaselineEvictionAttack,
    DirectAccessAttack,
    DmaEngineChannel,
    DramaClflushChannel,
    DramaEvictionChannel,
    ImpactPnmChannel,
    PnmOffchipChannel,
    direct_access_upper_bound_mbps,
    drama_clflush_upper_bound_mbps,
    drama_eviction_upper_bound_mbps,
    measure_all,
    properties_for,
    run_sec33_point,
    streamline_upper_bound_mbps,
)
from repro.cache import HierarchyConfig
from repro.dram import DRAMGeometry


def small_config(mapping="row", llc_mb=2.0, llc_replacement="srrip"):
    return SystemConfig(
        geometry=DRAMGeometry(ranks=1, banks_per_rank=16, rows_per_bank=4096),
        mapping=mapping,
        hierarchy=HierarchyConfig(num_cores=2, llc_size_mb=llc_mb,
                                  llc_replacement=llc_replacement,
                                  prefetchers_enabled=False),
        num_cores=2)


# ---------------------------------------------------------------------------
# DRAMA
# ---------------------------------------------------------------------------

def test_drama_clflush_transmits_correctly():
    channel = DramaClflushChannel(System(small_config()))
    result = channel.transmit_random(96, seed=2)
    assert result.error_rate == 0.0


def test_drama_clflush_much_slower_than_impact():
    """§5.3: IMPACT-PnM is up to ~4.9x faster than DRAMA-clflush."""
    cfg = SystemConfig.paper_default()
    drama = DramaClflushChannel(System(cfg)).transmit_random(128, seed=1)
    pnm = ImpactPnmChannel(System(cfg)).transmit_random(128, seed=1)
    assert pnm.throughput_mbps / drama.throughput_mbps > 3.5


def test_drama_clflush_degrades_with_llc_size():
    """Fig. 8: cache-mediated channels slow down as the LLC grows."""
    small = DramaClflushChannel(System(small_config(llc_mb=2.0))) \
        .transmit_random(96, seed=1)
    large = DramaClflushChannel(System(small_config(llc_mb=32.0))) \
        .transmit_random(96, seed=1)
    assert large.throughput_mbps < small.throughput_mbps


def test_drama_eviction_needs_xor_mapping():
    """Bank-safe eviction sets cannot exist when the LLC set index pins the
    bank (row-interleaved power-of-two geometry)."""
    with pytest.raises(ValueError):
        DramaEvictionChannel(System(small_config(mapping="row")))


def test_drama_eviction_transmits_with_low_errors():
    channel = DramaEvictionChannel(System(small_config(mapping="xor")))
    result = channel.transmit_random(64, seed=2)
    # Eviction is probabilistic under SRRIP (Table 1): a small error rate
    # is expected, collapse is not.
    assert result.error_rate < 0.25


def test_drama_eviction_slower_than_clflush():
    ev = DramaEvictionChannel(System(small_config(mapping="xor"))) \
        .transmit_random(64, seed=1)
    fl = DramaClflushChannel(System(small_config(mapping="xor"))) \
        .transmit_random(64, seed=1)
    assert ev.throughput_mbps < fl.throughput_mbps


def test_drama_rows_must_differ():
    with pytest.raises(ValueError):
        DramaClflushChannel(System(small_config()), sender_row=5,
                            receiver_row=5)


# ---------------------------------------------------------------------------
# DMA engine
# ---------------------------------------------------------------------------

def test_dma_channel_transmits_with_modest_errors():
    """Table 1: DMA's timing resolution is coarse — some decode errors."""
    result = DmaEngineChannel(System(small_config())).transmit_random(256, seed=2)
    assert result.error_rate < 0.10


def test_dma_between_drama_and_impact():
    """Fig. 8 ordering: DRAMA < DMA < IMPACT-PnM."""
    cfg = SystemConfig.paper_default()
    dma = DmaEngineChannel(System(cfg)).transmit_random(256, seed=1)
    drama = DramaClflushChannel(System(cfg)).transmit_random(128, seed=1)
    pnm = ImpactPnmChannel(System(cfg)).transmit_random(256, seed=1)
    assert drama.throughput_mbps < dma.throughput_mbps < pnm.throughput_mbps


def test_dma_throughput_flat_across_llc_sizes():
    a = DmaEngineChannel(System(small_config(llc_mb=2.0))).transmit_random(128, seed=1)
    b = DmaEngineChannel(System(small_config(llc_mb=32.0))).transmit_random(128, seed=1)
    assert a.throughput_mbps == pytest.approx(b.throughput_mbps, rel=0.10)


# ---------------------------------------------------------------------------
# PnM-OffChip
# ---------------------------------------------------------------------------

def test_pnm_offchip_close_to_pnm_at_base_llc():
    cfg = SystemConfig.paper_default()
    off = PnmOffchipChannel(System(cfg)).transmit_random(512, seed=1)
    pnm = ImpactPnmChannel(System(cfg)).transmit_random(512, seed=1)
    assert off.throughput_mbps == pytest.approx(pnm.throughput_mbps, rel=0.05)


def test_pnm_offchip_degrades_with_llc_size():
    """§5.3 observation five: the predictor caches more on larger LLCs."""
    cfg = SystemConfig.paper_default()
    base = PnmOffchipChannel(System(cfg)).transmit_random(512, seed=1)
    big = PnmOffchipChannel(System(cfg.with_llc(64.0))).transmit_random(512, seed=1)
    assert big.throughput_mbps < base.throughput_mbps


# ---------------------------------------------------------------------------
# Analytical upper bounds
# ---------------------------------------------------------------------------

def test_streamline_bound_matches_paper_validation():
    """§5.1: ~2.7 Mb/s upper bound for the smallest (2 MB) LLC, above the
    1.8 Mb/s Streamline reports on real hardware."""
    system = System(SystemConfig.paper_default().with_llc(2.0))
    bound = streamline_upper_bound_mbps(system)
    assert bound == pytest.approx(2.7, rel=0.05)
    assert bound > 1.8


def test_streamline_bound_decreases_with_llc_size():
    cfg = SystemConfig.paper_default()
    bounds = [streamline_upper_bound_mbps(System(cfg.with_llc(s)))
              for s in (2.0, 8.0, 32.0, 64.0)]
    assert bounds == sorted(bounds, reverse=True)


def test_streamline_redundancy_validation():
    with pytest.raises(ValueError):
        streamline_upper_bound_mbps(System(SystemConfig.paper_default()),
                                    redundancy=0.5)


def test_analytical_bounds_roughly_track_simulated_channels():
    """The analytical models are *upper bounds* (§5.1): above the simulated
    throughput but on the same scale."""
    cfg = SystemConfig.paper_default()
    system = System(cfg)
    sim = DramaClflushChannel(System(cfg)).transmit_random(128, seed=1)
    bound = drama_clflush_upper_bound_mbps(system)
    assert sim.throughput_mbps <= bound <= 3 * sim.throughput_mbps
    assert drama_eviction_upper_bound_mbps(system) < bound
    assert direct_access_upper_bound_mbps(system) > bound


# ---------------------------------------------------------------------------
# §3.3 attacks
# ---------------------------------------------------------------------------

def sec33_config(llc_mb=2.0, ways=16):
    # LRU models the paper's idealized N-request eviction (§3.3).
    cfg = SystemConfig.paper_default()
    return replace(cfg, hierarchy=replace(
        cfg.hierarchy, llc_size_mb=llc_mb, llc_ways=ways,
        llc_replacement="lru", prefetchers_enabled=False))


def test_direct_attack_flat_and_fast():
    """Fig. 2: ~11.27 Mb/s regardless of LLC size."""
    small = DirectAccessAttack(System(sec33_config(2.0))).transmit_random(256, seed=1)
    large = DirectAccessAttack(System(sec33_config(64.0))).transmit_random(256, seed=1)
    assert small.throughput_mbps == pytest.approx(11.27, rel=0.10)
    assert small.throughput_mbps == pytest.approx(large.throughput_mbps, rel=0.02)
    assert small.error_rate == 0.0


def test_baseline_attack_bounded_and_degrading():
    """Fig. 2: baseline <= 2.29 Mb/s, decreasing with LLC size."""
    p_small = run_sec33_point(System(sec33_config(2.0)), bits=192)
    p_large = run_sec33_point(System(sec33_config(64.0)), bits=192)
    assert p_small["baseline_mbps"] <= 2.29
    assert p_large["baseline_mbps"] < p_small["baseline_mbps"]
    assert p_large["eviction_latency_cycles"] > p_small["eviction_latency_cycles"]


def test_baseline_attack_degrades_with_ways():
    """Fig. 3: more LLC ways -> longer evictions -> lower throughput."""
    p8 = run_sec33_point(System(sec33_config(16.0, ways=8)), bits=128)
    p64 = run_sec33_point(System(sec33_config(16.0, ways=64)), bits=128)
    assert p64["baseline_mbps"] < p8["baseline_mbps"]
    assert p64["eviction_latency_cycles"] > p8["eviction_latency_cycles"]


# ---------------------------------------------------------------------------
# Table 1 primitives
# ---------------------------------------------------------------------------

def test_table1_property_matrix():
    assert len(TABLE1) == 5
    pim = properties_for("pim-operations")
    assert pim.no_cache_lookup and pim.no_excessive_accesses
    assert pim.timing_detectability and pim.isa_guarantee
    eviction = properties_for("eviction-sets")
    assert not eviction.no_cache_lookup and not eviction.isa_guarantee
    dma = properties_for("dma")
    assert dma.no_cache_lookup and not dma.timing_detectability
    with pytest.raises(ValueError):
        properties_for("telepathy")


def test_table1_row_rendering():
    row = properties_for("pim-operations").row()
    assert row["primitive"] == "pim-operations"
    assert row["no_cache_lookup"] == "yes"


def test_measured_probes_reflect_properties():
    """PiM probes are the cheapest full-DRAM observations; eviction the
    most expensive."""
    system = System(small_config())
    latencies = measure_all(system)
    assert set(latencies) == {p.name for p in TABLE1}
    assert latencies["pim-operations"] < latencies["dma"]
    assert latencies["eviction-sets"] > latencies["specialized-instructions"]
    assert all(lat > 0 for lat in latencies.values())
