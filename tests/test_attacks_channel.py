"""Unit tests for the covert-channel framework."""

import pytest

from repro import System, SystemConfig
from repro.attacks import ChannelResult, CovertChannel, random_bits


def make_result(sent, received, cycles=2600):
    return ChannelResult(attack="test", sent=sent, received=received,
                         cycles=cycles, cpu_hz=2.6e9)


def test_random_bits_reproducible():
    assert random_bits(64, seed=3) == random_bits(64, seed=3)
    assert random_bits(64, seed=3) != random_bits(64, seed=4)
    assert set(random_bits(256, seed=0)) == {0, 1}
    with pytest.raises(ValueError):
        random_bits(-1)


def test_error_rate_and_correct_bits():
    r = make_result([1, 0, 1, 0], [1, 1, 1, 0])
    assert r.errors == 1
    assert r.correct_bits == 3
    assert r.error_rate == 0.25


def test_throughput_counts_only_correct_bits():
    """§5.1: throughput is measured on successfully leaked data only."""
    r = make_result([1, 0, 1, 0], [1, 1, 1, 0], cycles=2600)
    # 3 correct bits over 2600 cycles at 2.6 GHz -> 3 Mb/s.
    assert r.throughput_mbps == pytest.approx(3.0)
    assert r.raw_throughput_mbps == pytest.approx(4.0)


def test_zero_cycles_guard():
    r = make_result([1], [1], cycles=0)
    assert r.throughput_mbps == 0.0


def test_mismatched_lengths_rejected():
    with pytest.raises(ValueError):
        make_result([1, 0], [1])


def test_summary_mentions_attack_and_error():
    text = make_result([1, 0], [1, 1]).summary()
    assert "test" in text
    assert "50.00%" in text


def test_decode_threshold():
    channel = CovertChannel(System(SystemConfig.paper_default()),
                            threshold_cycles=150)
    assert channel.decode(151) == 1
    assert channel.decode(150) == 0
    assert channel.decode(90) == 0


def test_check_bits_validation():
    assert CovertChannel.check_bits([1, 0, True, False]) == [1, 0, 1, 0]
    with pytest.raises(ValueError):
        CovertChannel.check_bits([2])


def test_transmit_is_abstract():
    channel = CovertChannel(System(SystemConfig.paper_default()))
    with pytest.raises(NotImplementedError):
        channel.transmit([1])


def test_invalid_threshold_rejected():
    with pytest.raises(ValueError):
        CovertChannel(System(SystemConfig.paper_default()), threshold_cycles=0)
