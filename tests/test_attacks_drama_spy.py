"""Tests for the DRAMA keystroke-timing spy (§2.3 background attack)."""

import pytest

from repro import System, SystemConfig
from repro.attacks.drama_spy import (
    DramaKeystrokeSpy,
    KeystrokeSpyResult,
    poisson_keystrokes,
)
from repro.cache import HierarchyConfig
from repro.dram import DRAMGeometry


def make_system(**kwargs):
    cfg = SystemConfig(
        geometry=DRAMGeometry(ranks=1, banks_per_rank=16, rows_per_bank=4096),
        hierarchy=HierarchyConfig(num_cores=2, llc_size_mb=2.0,
                                  prefetchers_enabled=False),
        num_cores=2)
    return System(cfg)


def test_recovers_every_keystroke():
    spy = DramaKeystrokeSpy(make_system())
    events = poisson_keystrokes(12, mean_gap_cycles=40_000, seed=3)
    result = spy.spy(events)
    assert result.recall == 1.0
    assert result.precision == 1.0
    assert spy.probe_count > 100  # the attacker really was probing


def test_recovers_typing_dynamics():
    """The leak DRAMA monetizes: inter-keystroke intervals, recovered to
    within a probe period."""
    spy = DramaKeystrokeSpy(make_system())
    events = poisson_keystrokes(10, mean_gap_cycles=60_000, seed=5)
    result = spy.spy(events)
    error = result.interval_error_cycles()
    assert error is not None
    assert error < 3 * result.probe_period_cycles


def test_no_events_no_detections():
    spy = DramaKeystrokeSpy(make_system())
    result = spy.spy([])
    assert result.detected_times == ()
    assert result.recall == 1.0


def test_burst_timing_is_smeared_by_probe_resolution():
    """Keystrokes issued closer together than the probe cadence are
    recovered only at the probe/bank serialization rate: the attacker
    still counts them, but the recovered inter-keystroke intervals bear
    no resemblance to the true sub-probe-period gaps."""
    spy = DramaKeystrokeSpy(make_system())
    result = spy.spy([50_001, 50_002, 50_003, 120_000])
    assert len(result.detected_times) == 4  # counted...
    true_burst_gap = 1
    detected_gaps = [b - a for a, b in zip(result.detected_times,
                                           result.detected_times[1:])]
    # ...but the burst's recovered gaps are ~the probe period, not ~1.
    assert min(detected_gaps[:2]) > 50 * true_burst_gap


def test_different_bank_victim_invisible():
    """A victim in another bank never conflicts with the probe row."""
    system = make_system()
    spy = DramaKeystrokeSpy(system, bank=0)
    # Build a victim schedule manually in bank 5 by spying on a schedule
    # whose accesses we redirect: simplest check — run with no events and
    # manually activate another bank; detector must stay silent.
    from repro.sim import Scheduler

    def other_victim(ctx, sys_):
        for i in range(5):
            ctx.advance(20_000)
            yield None
            sys_.load(ctx, core=0,
                      addr=sys_.address_of(5, 400 + i), requestor="victim")
    sched = Scheduler()
    sched.spawn(other_victim, system, name="victim")
    sched.run()
    result = spy.spy([])
    assert result.detected_times == ()


def test_validation():
    with pytest.raises(ValueError):
        DramaKeystrokeSpy(make_system(), victim_row=5, attacker_row=5)
    with pytest.raises(ValueError):
        poisson_keystrokes(-1)
    with pytest.raises(ValueError):
        poisson_keystrokes(3, mean_gap_cycles=0)


def test_result_metrics_edge_cases():
    r = KeystrokeSpyResult(true_times=(100,), detected_times=(),
                           probe_period_cycles=50.0)
    assert r.recall == 0.0
    assert r.precision == 1.0
    assert r.interval_error_cycles() is None
