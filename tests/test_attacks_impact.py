"""Integration tests for the IMPACT-PnM and IMPACT-PuM covert channels."""

import pytest

from repro import System, SystemConfig
from repro.attacks import ImpactPnmChannel, ImpactPumChannel, random_bits
from repro.cache import HierarchyConfig
from repro.dram import DRAMGeometry


def small_config(**noise):
    cfg = SystemConfig(
        geometry=DRAMGeometry(ranks=1, banks_per_rank=16, rows_per_bank=4096),
        hierarchy=HierarchyConfig(num_cores=2, llc_size_mb=2.0,
                                  prefetchers_enabled=False),
        num_cores=2)
    if noise:
        cfg = cfg.with_noise(**noise)
    return cfg


# ---------------------------------------------------------------------------
# IMPACT-PnM
# ---------------------------------------------------------------------------

def test_pnm_transmits_error_free_without_noise():
    channel = ImpactPnmChannel(System(small_config()))
    result = channel.transmit_random(128, seed=7)
    assert result.error_rate == 0.0
    assert result.bits == 128


def test_pnm_decodes_all_patterns():
    for pattern in ([0] * 16, [1] * 16, [1, 0] * 8, [0, 0, 1, 1] * 4):
        channel = ImpactPnmChannel(System(small_config()))
        result = channel.transmit(pattern)
        assert result.received == pattern


def test_pnm_throughput_matches_paper_scale():
    """§5.3: IMPACT-PnM ~12.87 Mb/s on the Table 2 system."""
    channel = ImpactPnmChannel(System(SystemConfig.paper_default()))
    result = channel.transmit_random(512, seed=1)
    assert result.throughput_mbps == pytest.approx(12.87, rel=0.08)


def test_pnm_probe_latencies_bimodal_around_threshold():
    """Fig. 7(a): conflict and hit probe latencies straddle 150 cycles."""
    channel = ImpactPnmChannel(System(small_config()))
    message = [1, 0] * 8
    result = channel.transmit(message)
    ones = [lat for bit, lat in zip(message, result.probe_latencies) if bit]
    zeros = [lat for bit, lat in zip(message, result.probe_latencies) if not bit]
    assert min(ones) > 150
    assert max(zeros) < 150


def test_pnm_long_message_wraps_banks_correctly():
    """Messages longer than the bank count reuse banks round-robin; credit
    backpressure keeps the sender from clobbering unprobed banks."""
    channel = ImpactPnmChannel(System(small_config()))
    result = channel.transmit_random(256, seed=3)  # 16 banks x 16 rounds
    assert result.error_rate == 0.0


def test_pnm_bypasses_cache_hierarchy():
    system = System(small_config())
    channel = ImpactPnmChannel(system)
    channel.transmit_random(64, seed=0)
    assert system.hierarchy.stats.demand_accesses == 0


def test_pnm_survives_moderate_noise():
    """§5.1: noise sources induce some errors but not channel collapse."""
    channel = ImpactPnmChannel(System(small_config(rate_per_kilocycle=2.0)))
    result = channel.transmit_random(256, seed=5)
    assert result.error_rate < 0.30
    assert result.throughput_mbps > 5.0


def test_pnm_sender_receiver_breakdown():
    times = ImpactPnmChannel(System(small_config())).sender_receiver_breakdown()
    assert times["send_cycles"] > 0
    assert times["read_cycles"] > 0


def test_pnm_invalid_configs_rejected():
    system = System(small_config())
    with pytest.raises(ValueError):
        ImpactPnmChannel(system, batch_size=0)
    with pytest.raises(ValueError):
        ImpactPnmChannel(system, init_row=5, interference_row=5)
    with pytest.raises(ValueError):
        ImpactPnmChannel(system, banks=[])


# ---------------------------------------------------------------------------
# IMPACT-PuM
# ---------------------------------------------------------------------------

def test_pum_transmits_error_free_without_noise():
    channel = ImpactPumChannel(System(small_config()))
    result = channel.transmit_random(128, seed=7)
    assert result.error_rate == 0.0


def test_pum_decodes_all_patterns():
    for pattern in ([0] * 16, [1] * 16, [1, 0] * 8):
        channel = ImpactPumChannel(System(small_config()))
        result = channel.transmit(pattern)
        assert result.received == pattern


def test_pum_throughput_matches_paper_scale():
    """§5.3: IMPACT-PuM ~14.16 Mb/s, ~10% above IMPACT-PnM."""
    result = ImpactPumChannel(System(SystemConfig.paper_default())) \
        .transmit_random(512, seed=1)
    assert result.throughput_mbps == pytest.approx(14.16, rel=0.08)


def test_pum_beats_pnm():
    pum = ImpactPumChannel(System(SystemConfig.paper_default())) \
        .transmit_random(512, seed=1)
    pnm = ImpactPnmChannel(System(SystemConfig.paper_default())) \
        .transmit_random(512, seed=1)
    assert pum.throughput_mbps > pnm.throughput_mbps


def test_pum_sender_14x_faster_than_pnm_sender():
    """Fig. 9: the PuM sender transmits a 16-bit message in one parallel
    RowClone — ~14x faster than the PnM sender's 16 sequential PEIs."""
    pnm = ImpactPnmChannel(System(small_config())).sender_receiver_breakdown(16)
    pum = ImpactPumChannel(System(small_config())).sender_receiver_breakdown(16)
    speedup = pnm["send_cycles"] / pum["send_cycles"]
    assert 10 <= speedup <= 20


def test_pum_probe_latencies_bimodal_around_threshold():
    """Fig. 7(b)."""
    channel = ImpactPumChannel(System(small_config()))
    message = [1, 0] * 8
    result = channel.transmit(message)
    ones = [lat for bit, lat in zip(message, result.probe_latencies) if bit]
    zeros = [lat for bit, lat in zip(message, result.probe_latencies) if not bit]
    assert min(ones) > 150
    assert max(zeros) < 150


def test_pum_multi_round_messages():
    channel = ImpactPumChannel(System(small_config()))
    result = channel.transmit_random(96, seed=2)  # 6 rounds of 16
    assert result.error_rate == 0.0


def test_pnm_threshold_calibration():
    """The attacker calibrates the decode threshold online (~Fig. 7's 150)."""
    channel = ImpactPnmChannel(System(small_config()))
    threshold = channel.calibrate_threshold()
    assert 120 <= threshold <= 175
    assert channel.threshold_cycles == threshold
    result = channel.transmit_random(64, seed=12)
    assert result.error_rate == 0.0


def test_pnm_calibration_fails_on_defended_system():
    """Under CTD there is no timing gap to calibrate against."""
    channel = ImpactPnmChannel(System(small_config().with_defense("ctd")))
    with pytest.raises(RuntimeError):
        channel.calibrate_threshold()


def test_pnm_calibration_validation():
    channel = ImpactPnmChannel(System(small_config()))
    with pytest.raises(ValueError):
        channel.calibrate_threshold(samples=0)
    with pytest.raises(ValueError):
        channel.calibrate_threshold(calibration_rows=(5, 5))


def test_pnm_batch_cannot_exceed_banks():
    """A bank carries one bit of evidence per batch; wider batches would
    self-overwrite on narrow co-locations."""
    system = System(small_config())
    with pytest.raises(ValueError):
        ImpactPnmChannel(system, banks=[3], batch_size=4)
    # Single-bank lockstep works at batch 1.
    channel = ImpactPnmChannel(system, banks=[3], batch_size=1)
    result = channel.transmit_random(32, seed=4)
    assert result.error_rate == 0.0
