"""Tests for the §4.3 step-4 inference (leak -> genome region)."""

import pytest

from repro import System, SystemConfig
from repro.attacks import ReadMappingSideChannel
from repro.attacks.inference import (
    IdentificationResult,
    ReadIdentifier,
    RegionScore,
    longest_common_subsequence,
)
from repro.cache import HierarchyConfig
from repro.dram import DRAMGeometry
from repro.genomics import PimReadMapper, ReferenceIndex, generate_reference

REFERENCE = generate_reference(8000, seed=41)
NUM_BANKS = 256
INDEX = ReferenceIndex(REFERENCE, num_banks=NUM_BANKS)
IDENTIFIER = ReadIdentifier(REFERENCE, INDEX)
CANDIDATES = list(range(0, 7800, 300))


def test_lcs_basics():
    assert longest_common_subsequence([1, 2, 3], [1, 2, 3]) == 3
    assert longest_common_subsequence([1, 9, 2, 3], [1, 2, 8, 3]) == 3
    assert longest_common_subsequence([], [1]) == 0
    assert longest_common_subsequence([4, 5], [6, 7]) == 0


def test_predicted_banks_derive_from_public_index():
    banks = IDENTIFIER.predicted_banks(900)
    assert banks
    assert all(0 <= b < NUM_BANKS for b in banks)
    # Deterministic (and cached).
    assert IDENTIFIER.predicted_banks(900) == banks


def test_prediction_range_validation():
    with pytest.raises(ValueError):
        IDENTIFIER.predicted_banks(len(REFERENCE))
    with pytest.raises(ValueError):
        ReadIdentifier(REFERENCE, INDEX, read_length=5)


def test_perfect_leak_identifies_true_region():
    """An exact leak of the victim's probe banks ranks the true region
    first among the candidates."""
    true_start = 1200
    leak = IDENTIFIER.predicted_banks(true_start)
    decoys = [s for s in CANDIDATES if s != true_start]
    result = IDENTIFIER.identify(leak, decoys + [true_start])
    assert result.best.region_start == true_start
    assert result.rank_of(true_start) == 1
    assert result.margin > 0


def test_unrelated_leak_scores_low():
    leak = IDENTIFIER.predicted_banks(1200)
    wrong = IDENTIFIER.score_region(leak, 4500)
    right = IDENTIFIER.score_region(leak, 1200)
    assert right.score == 1.0
    assert wrong.score < 0.5


def test_identify_requires_candidates():
    with pytest.raises(ValueError):
        IDENTIFIER.identify([1, 2, 3], [])


def test_identification_accuracy_metric():
    trials = [(IDENTIFIER.predicted_banks(start), start)
              for start in (300, 2100, 5400)]
    accuracy = IDENTIFIER.identification_accuracy(
        trials, CANDIDATES, tolerance=0)
    assert accuracy == 1.0
    assert IDENTIFIER.identification_accuracy([], CANDIDATES) == 0.0


def test_more_banks_sharpen_identification():
    """§5.4: doubling the bank count leaks more precise information —
    decoy regions separate further from the true one."""
    coarse = ReadIdentifier(REFERENCE, INDEX.restripe(16))
    fine = ReadIdentifier(REFERENCE, INDEX.restripe(1024))
    true_start = 2400
    decoys = [s for s in CANDIDATES if abs(s - true_start) > 150]
    margins = {}
    for name, identifier in (("coarse", coarse), ("fine", fine)):
        leak = identifier.predicted_banks(true_start)
        result = identifier.identify(leak, decoys + [true_start])
        assert result.best.region_start == true_start
        margins[name] = result.margin
    assert margins["fine"] >= margins["coarse"]


def test_end_to_end_leak_to_identification():
    """Full chain: victim maps a read, attacker leaks banks through the
    timing channel, inference recovers the read's region."""
    system = System(SystemConfig(
        geometry=DRAMGeometry(ranks=1, banks_per_rank=NUM_BANKS,
                              rows_per_bank=8192),
        hierarchy=HierarchyConfig(num_cores=2, llc_size_mb=2.0,
                                  prefetchers_enabled=False),
        num_cores=2))
    true_start = 3300
    read = REFERENCE[true_start:true_start + 150]
    mapper = PimReadMapper(system, REFERENCE, INDEX)
    schedule = mapper.seed_accesses(read)
    channel = ReadMappingSideChannel(system)
    # Leak and reconstruct the observed bank sequence (noise-free run:
    # decoded banks == victim banks, in order).
    result = channel.run(schedule)
    assert result.error_rate == 0.0
    leaked_banks = [access.bank for access in schedule]
    identification = IDENTIFIER.identify(leaked_banks,
                                         CANDIDATES + [true_start])
    assert identification.best.region_start == true_start
