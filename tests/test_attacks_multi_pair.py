"""Tests for concurrent multi-pair IMPACT-PnM channels."""

import pytest

from repro import System, SystemConfig
from repro.attacks import run_multi_pair
from repro.cache import HierarchyConfig
from repro.dram import DRAMGeometry


def config(banks=64):
    return SystemConfig(
        geometry=DRAMGeometry(ranks=1, banks_per_rank=banks,
                              rows_per_bank=4096),
        hierarchy=HierarchyConfig(num_cores=4, llc_size_mb=2.0,
                                  prefetchers_enabled=False),
        num_cores=4)


def test_single_pair_matches_channel_scale():
    result = run_multi_pair(System(config()), pairs=1, bits_per_pair=256)
    assert result.worst_error_rate == 0.0
    assert result.aggregate_throughput_mbps == pytest.approx(12.8, rel=0.1)


def test_pairs_transmit_error_free_concurrently():
    """Disjoint bank subsets: pairs do not corrupt each other."""
    result = run_multi_pair(System(config()), pairs=4, bits_per_pair=128)
    assert result.pairs == 4
    for outcome in result.outcomes:
        assert outcome.error_rate == 0.0
        assert outcome.received == outcome.sent
    # Bank subsets really are disjoint.
    all_banks = [b for o in result.outcomes for b in o.banks]
    assert len(all_banks) == len(set(all_banks))


def test_aggregate_throughput_scales_with_pairs():
    """Bank-level parallelism headroom: k pairs >> 1 pair."""
    one = run_multi_pair(System(config()), pairs=1, bits_per_pair=256)
    four = run_multi_pair(System(config()), pairs=4, bits_per_pair=256)
    scaling = (four.aggregate_throughput_mbps
               / one.aggregate_throughput_mbps)
    assert scaling > 3.0


def test_scaling_saturates_when_banks_run_short():
    """With few banks per pair, credit backpressure throttles pipelining."""
    eight = run_multi_pair(System(config()), pairs=8, bits_per_pair=128)
    four = run_multi_pair(System(config()), pairs=4, bits_per_pair=128)
    per_pair_8 = eight.aggregate_throughput_mbps / 8
    per_pair_4 = four.aggregate_throughput_mbps / 4
    assert per_pair_8 < per_pair_4


def test_validation():
    system = System(config(banks=16))
    with pytest.raises(ValueError):
        run_multi_pair(system, pairs=0)
    with pytest.raises(ValueError):
        run_multi_pair(system, pairs=8, batch_size=4)  # 2 banks/pair < batch
