"""Tests for timing-based address reconnaissance and memory massaging."""

from dataclasses import replace

import pytest

from repro import System, SystemConfig
from repro.attacks.recon import AddressReconnaissance, BankFunctionModel
from repro.cache import HierarchyConfig
from repro.dram import DRAMGeometry

GEOM = DRAMGeometry(ranks=1, banks_per_rank=16, rows_per_bank=256)


def make_system(mapping="row"):
    return System(SystemConfig(
        geometry=GEOM, mapping=mapping,
        hierarchy=HierarchyConfig(num_cores=1, llc_size_mb=2.0,
                                  prefetchers_enabled=False),
        num_cores=1))


def test_same_bank_probe_detects_row_thrashing():
    system = make_system()
    recon = AddressReconnaissance(system)
    a = system.address_of(bank=3, row=10)
    b = system.address_of(bank=3, row=20)
    c = system.address_of(bank=4, row=10)
    assert recon.same_bank_different_row(a, b)
    assert not recon.same_bank_different_row(a, c)


def test_same_bank_same_row_reads_fast():
    system = make_system()
    recon = AddressReconnaissance(system)
    a = system.address_of(bank=3, row=10, col=0)
    b = system.address_of(bank=3, row=10, col=256)
    assert not recon.same_bank_different_row(a, b)


@pytest.mark.parametrize("mapping", ["row", "line", "xor"])
def test_recovered_function_matches_ground_truth(mapping):
    """The recon must classify every bit exactly as the real mapper does:
    a bit is bank-affecting iff flipping it changes decode(addr).bank."""
    system = make_system(mapping)
    recon = AddressReconnaissance(system)
    model = recon.recover_bank_function(base=0)
    mapper = system.controller.mapper
    capacity = GEOM.capacity_bytes
    for bit in range(6, capacity.bit_length() - 1):
        truth_bank_affecting = (mapper.decode(0).bank
                                != mapper.decode(1 << bit).bank)
        assert (bit in model.bank_bits) == truth_bank_affecting, (mapping, bit)


def test_xor_mapping_produces_xor_groups():
    system = make_system("xor")
    recon = AddressReconnaissance(system)
    model = recon.recover_bank_function(base=0)
    # The xor scheme pairs each raw bank bit with a row bit.
    multi_bit_groups = [g for g in model.xor_groups if len(g) > 1]
    assert multi_bit_groups
    assert "^" in model.describe()


def test_row_mapping_groups_are_single_bits():
    system = make_system("row")
    recon = AddressReconnaissance(system)
    model = recon.recover_bank_function(base=0)
    assert all(len(g) == 1 for g in model.xor_groups)
    # 16 banks -> 4 bank bits at positions 13..16 (8 KB rows).
    assert model.bank_bits == (13, 14, 15, 16)


def test_column_bits_not_misclassified():
    system = make_system("row")
    recon = AddressReconnaissance(system)
    model = recon.recover_bank_function(base=0)
    # Bits 6..12 stay within one 8 KB row.
    for bit in range(6, 13):
        assert bit in model.column_bits


def test_memory_massaging_finds_co_located_rows():
    system = make_system("xor")
    recon = AddressReconnaissance(system)
    base = system.address_of(bank=5, row=7)
    mapper = system.controller.mapper
    found = recon.find_same_bank_addresses(base, count=4)
    assert len(found) == 4
    for addr in found:
        loc = mapper.decode(addr)
        assert loc.bank == 5
        assert loc.row != 7


def test_massaging_validation():
    recon = AddressReconnaissance(make_system())
    with pytest.raises(ValueError):
        recon.find_same_bank_addresses(0, count=0)


def test_pair_probe_validation():
    with pytest.raises(ValueError):
        AddressReconnaissance(make_system(), pair_probes=1)


def test_probe_budget_tracked():
    system = make_system()
    recon = AddressReconnaissance(system)
    recon.same_bank_different_row(system.address_of(0, 1),
                                  system.address_of(0, 2))
    assert recon.timing_probes == 2 * recon.pair_probes
