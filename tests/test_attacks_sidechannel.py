"""Integration tests for the read-mapping side channel (§4.3, Fig. 10)."""

import pytest

from repro import System, SystemConfig
from repro.attacks import (
    ReadMappingSideChannel,
    SideChannelConfig,
    fake_schedule,
)
from repro.cache import HierarchyConfig
from repro.dram import DRAMGeometry
from repro.genomics import (
    PimReadMapper,
    ReferenceIndex,
    generate_reference,
    sample_reads,
)


def bank_config(num_banks, noise=0.0):
    cfg = SystemConfig(
        geometry=DRAMGeometry(ranks=1, banks_per_rank=num_banks,
                              rows_per_bank=8192),
        hierarchy=HierarchyConfig(num_cores=2, llc_size_mb=2.0,
                                  prefetchers_enabled=False),
        num_cores=2)
    if noise:
        cfg = cfg.with_noise(noise)
    return cfg


def test_noise_free_attack_is_exact():
    system = System(bank_config(64))
    channel = ReadMappingSideChannel(system)
    schedule = fake_schedule(64, 40, seed=1)
    result = channel.run(schedule)
    assert result.correct == 40
    assert result.error_rate == 0.0
    assert result.accuracy == 1.0


def test_leak_identifies_actual_victim_banks():
    """Every decoded leak corresponds to the bank the victim touched."""
    system = System(bank_config(32))
    channel = ReadMappingSideChannel(system)
    schedule = fake_schedule(32, 24, seed=2)
    result = channel.run(schedule)
    assert result.missed == 0
    assert result.false_positives == 0


def test_bits_per_leak_is_log2_banks():
    system = System(bank_config(1024))
    channel = ReadMappingSideChannel(system)
    result = channel.run(fake_schedule(1024, 4, seed=0))
    assert result.bits_per_leak == 10.0


def test_throughput_drops_with_more_banks():
    """Fig. 10, left axis: more banks -> longer scans -> less bandwidth."""
    results = {}
    for banks in (256, 1024, 4096):
        system = System(bank_config(banks))
        schedule = fake_schedule(banks, 30, seed=3)
        results[banks] = ReadMappingSideChannel(system).run(schedule)
    assert (results[256].throughput_mbps > results[1024].throughput_mbps
            > results[4096].throughput_mbps)


def test_error_rate_grows_with_more_banks_under_noise():
    """Fig. 10, right axis: longer scan windows collect more stray
    activations."""
    errors = {}
    for banks in (1024, 8192):
        system = System(bank_config(banks, noise=0.0105))
        schedule = fake_schedule(banks, 60, seed=4)
        errors[banks] = ReadMappingSideChannel(system).run(schedule).error_rate
    assert errors[8192] > errors[1024]


def test_fig10_anchor_points():
    """§5.4: ~7.57 Mb/s @ 1024 banks (<5% error); ~2.56 Mb/s @ 8192
    (<15% error)."""
    system = System(bank_config(1024, noise=0.0105))
    r1024 = ReadMappingSideChannel(system).run(fake_schedule(1024, 80, seed=5))
    assert r1024.throughput_mbps == pytest.approx(7.57, rel=0.12)
    assert r1024.error_rate < 0.05

    system = System(bank_config(8192, noise=0.0105))
    r8192 = ReadMappingSideChannel(system).run(fake_schedule(8192, 40, seed=5))
    assert r8192.throughput_mbps == pytest.approx(2.56, rel=0.12)
    assert r8192.error_rate < 0.15


def test_end_to_end_with_real_read_mapper():
    """Victim = actual PiM read mapper; attacker decodes its seeding."""
    num_banks = 64
    system = System(bank_config(num_banks))
    reference = generate_reference(4000, seed=21)
    index = ReferenceIndex(reference, num_banks=num_banks)
    pim = PimReadMapper(system, reference, index)
    reads = [r for r, _ in sample_reads(reference, num_reads=3,
                                        read_length=120, error_rate=0.0,
                                        seed=22)]
    schedule = pim.trace_for_reads(reads)
    assert schedule
    result = ReadMappingSideChannel(system).run(
        schedule, entries_per_bank=index.entries_per_bank)
    assert result.error_rate == 0.0
    assert result.entries_per_bank == index.entries_per_bank


def test_anchor_row_collision_rejected():
    system = System(bank_config(16))
    channel = ReadMappingSideChannel(system,
                                     SideChannelConfig(anchor_row=1024))
    with pytest.raises(ValueError):
        channel.run(fake_schedule(16, 4, seed=0, row_offset=1024))


def test_config_validation():
    with pytest.raises(ValueError):
        SideChannelConfig(scan_issue_gap_cycles=0)
    with pytest.raises(ValueError):
        SideChannelConfig(victim_compute_cycles=-1)


def test_summary_format():
    system = System(bank_config(16))
    result = ReadMappingSideChannel(system).run(fake_schedule(16, 4, seed=0),
                                                entries_per_bank=4.0)
    text = result.summary()
    assert "16 banks" in text
    assert "Mb/s" in text


# ---------------------------------------------------------------------------
# Concurrent (free-running attacker) variant
# ---------------------------------------------------------------------------

def test_concurrent_mode_decodes_most_events():
    from repro.attacks import ConcurrentSideChannel
    system = System(bank_config(64))
    channel = ConcurrentSideChannel(system)
    result = channel.run(fake_schedule(64, 30, seed=9))
    assert result.correct >= 25
    assert result.error_rate < 0.25


def test_concurrent_mode_merges_same_bank_collisions():
    """Two probes of one bank inside a scan window merge into one leak —
    the miss mode the serialized harness cannot exhibit."""
    from repro.attacks import ConcurrentSideChannel
    from repro.genomics.index import BucketLocation
    from repro.genomics.pim_mapper import SeedAccess
    # Victim hammers a single bank faster than the attacker can scan.
    system = System(bank_config(2048))
    schedule = [SeedAccess(hash_value=i,
                           location=BucketLocation(entry_index=i, bank=7,
                                                   row=1024 + (i % 4)))
                for i in range(20)]
    channel = ConcurrentSideChannel(system)
    result = channel.run(schedule)
    assert result.missed > 0


def test_concurrent_mode_can_outrun_serialized_mode():
    """When the victim probes faster than full scans complete, the
    free-running attacker harvests several leaks per scan."""
    from repro.attacks import ConcurrentSideChannel
    schedule = fake_schedule(4096, 40, seed=10)
    serialized = ReadMappingSideChannel(System(bank_config(4096))) \
        .run(schedule)
    concurrent = ConcurrentSideChannel(System(bank_config(4096))) \
        .run(schedule)
    assert concurrent.throughput_mbps > serialized.throughput_mbps


def test_side_channel_generalizes_to_pagerank_victim():
    """§4.3's mechanism is application-agnostic: the same attacker leaks a
    PEI-accelerated PageRank's vertex-gather banks, exposing which part of
    the (shared) graph the victim is processing."""
    from repro.genomics.index import BucketLocation
    from repro.genomics.pim_mapper import SeedAccess
    from repro.workloads import generate_graph
    from repro.workloads.kernels import Layout

    num_banks = 128
    system = System(bank_config(num_banks))
    graph = generate_graph(200, avg_degree=6, seed=7)
    layout = Layout(node_bytes=64)
    mapper = system.controller.mapper
    # The victim's rank-gather schedule for a vertex range, expressed as
    # generic (bank, row) accesses.
    schedule = []
    for u in range(40, 60):
        for v in graph.neighbors(u):
            loc = mapper.decode(layout.data_addr(v))
            if loc.row == 50:  # avoid the attacker's anchor row
                continue
            schedule.append(SeedAccess(hash_value=v, location=BucketLocation(
                entry_index=v, bank=loc.bank, row=loc.row, col=loc.col)))
    assert schedule
    result = ReadMappingSideChannel(system).run(schedule)
    assert result.error_rate == 0.0
    assert result.correct == len(schedule)


def test_pum_threshold_calibration():
    from repro.attacks import ImpactPumChannel
    channel = ImpactPumChannel(System(bank_config(16)))
    threshold = channel.calibrate_threshold()
    assert 130 <= threshold <= 190
    result = channel.transmit_random(48, seed=8)
    assert result.error_rate == 0.0
    with pytest.raises(ValueError):
        channel.calibrate_threshold(samples=0)
