"""Tests for the simulated Streamline channel [115]."""

import pytest

from repro import System, SystemConfig
from repro.attacks import StreamlineChannel, streamline_upper_bound_mbps
from repro.cache import HierarchyConfig
from repro.dram import DRAMGeometry


def small_config(llc_mb=2.0, prefetchers=False):
    return SystemConfig(
        geometry=DRAMGeometry(ranks=1, banks_per_rank=16, rows_per_bank=8192),
        hierarchy=HierarchyConfig(num_cores=2, llc_size_mb=llc_mb,
                                  prefetchers_enabled=prefetchers),
        num_cores=2)


def make_channel(llc_mb=2.0, prefetchers=False, **kwargs):
    kwargs.setdefault("array_mb", 16.0)
    return StreamlineChannel(System(small_config(llc_mb, prefetchers)),
                             **kwargs)


def test_transmits_error_free_without_noise():
    result = make_channel().transmit_random(96, seed=3)
    assert result.error_rate == 0.0


def test_decode_convention_inverted():
    """Streamline decodes FAST (cache hit) as 1."""
    channel = make_channel()
    assert channel.decode(30) == 1
    assert channel.decode(150) == 0


def test_no_flushes_and_no_semaphores_needed():
    """Flushless and synchronization-free: the hierarchy records zero
    clflushes for either party."""
    system = System(small_config())
    channel = StreamlineChannel(system, array_mb=16.0)
    channel.transmit_random(64, seed=4)
    assert system.hierarchy.stats.clflushes == 0


def test_throughput_below_analytical_bound():
    """§5.1: the analytical model upper-bounds the implementable channel."""
    config = SystemConfig.paper_default()
    sim = StreamlineChannel(System(config)).transmit_random(128, seed=5)
    bound = streamline_upper_bound_mbps(System(config))
    assert sim.throughput_mbps <= bound
    assert sim.throughput_mbps > 0.5 * bound  # but not far below


def test_throughput_degrades_with_llc_size():
    small = make_channel(llc_mb=2.0).transmit_random(96, seed=6)
    large = make_channel(llc_mb=8.0, array_mb=48.0).transmit_random(96, seed=6)
    assert large.throughput_mbps < small.throughput_mbps


def test_survives_prefetchers_via_random_traversal():
    """The shuffled walk starves the stream prefetchers; a sequential walk
    would hand the receiver false hits."""
    result = make_channel(prefetchers=True).transmit_random(96, seed=7)
    assert result.error_rate < 0.05


def test_message_too_long_rejected():
    channel = make_channel(array_mb=4.1)
    with pytest.raises(ValueError):
        channel.transmit_random(100_000, seed=0)


def test_config_validation():
    with pytest.raises(ValueError):
        make_channel(redundancy=2)  # must be odd
    with pytest.raises(ValueError):
        make_channel(lag_line_slots=0)
    with pytest.raises(ValueError):
        make_channel(llc_mb=8.0, array_mb=8.0)  # array must outsize LLC


def test_shared_order_is_the_seeded_shuffle_every_way(tmp_path, monkeypatch):
    """The traversal order must be bit-for-bit the historical inline
    shuffle on every path: kill switch, memo, and on-disk artifact."""
    import random

    from repro.attacks import streamline
    from repro.exp import warmstore

    expected = list(range(5000))
    random.Random(7).shuffle(expected)

    monkeypatch.setenv("REPRO_NO_WARMSTORE", "1")
    assert streamline.shared_order(5000, 7) == expected

    monkeypatch.delenv("REPRO_NO_WARMSTORE")
    monkeypatch.setenv("REPRO_WARMSTORE_DIR", str(tmp_path))
    warmstore.reset_active_store()
    streamline._ORDER_MEMO.pop((5000, 7), None)
    assert streamline.shared_order(5000, 7) == expected  # built + stored
    assert streamline.shared_order(5000, 7) == expected  # memo hit
    streamline._ORDER_MEMO.pop((5000, 7), None)
    warmstore.reset_active_store()
    assert streamline.shared_order(5000, 7) == expected  # disk artifact
    streamline._ORDER_MEMO.pop((5000, 7), None)
    warmstore.reset_active_store()
