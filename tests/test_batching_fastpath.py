"""Equivalence tests: batched operations, the scheduler run-to-block fast
path, and BackgroundNoise window semantics."""

import random

import pytest

from repro.config import SystemConfig
from repro.sim import Barrier, DeadlockError, Scheduler, Semaphore
from repro.system import BackgroundNoise, System


# ----------------------------------------------------------------------
# Batched operation API
# ----------------------------------------------------------------------


def _addrs(count, stride=64, mod=1 << 21, mul=5):
    return [(i * stride * mul) % mod for i in range(count)]


def test_access_batch_matches_chained_accesses():
    addrs = _addrs(4000)
    loop_sys = System(SystemConfig.paper_default())
    batch_sys = System(SystemConfig.paper_default())
    now = 100
    for addr in addrs:
        result = loop_sys.hierarchy.access(0, addr, now, pc=7,
                                           requestor="cpu")
        now = result.finish
    batch_finish = batch_sys.hierarchy.access_batch(0, addrs, 100, pc=7,
                                                    requestor="cpu")
    assert batch_finish == now
    assert (batch_sys.hierarchy.stats.demand_accesses
            == loop_sys.hierarchy.stats.demand_accesses)
    assert (batch_sys.hierarchy.llc.stats.misses
            == loop_sys.hierarchy.llc.stats.misses)
    assert (batch_sys.controller.requestor_stats.keys()
            == loop_sys.controller.requestor_stats.keys())
    for name, stats in loop_sys.controller.requestor_stats.items():
        other = batch_sys.controller.requestor_stats[name]
        assert (stats.reads, stats.hits, stats.conflicts) == \
            (other.reads, other.hits, other.conflicts)
    assert batch_sys.snapshot().payload["hierarchy"] == \
        loop_sys.snapshot().payload["hierarchy"]


def test_load_many_matches_load_loop():
    addrs = _addrs(1500, mul=11)
    loop_sys = System(SystemConfig.paper_default())
    batch_sys = System(SystemConfig.paper_default())

    def loop_body(ctx):
        for addr in addrs:
            loop_sys.load(ctx, 0, addr, requestor="cpu")
        yield None

    def batch_body(ctx):
        batch_sys.load_many(ctx, 0, addrs, requestor="cpu")
        yield None

    sched_a = Scheduler()
    thread_a = sched_a.spawn(loop_body)
    sched_a.run()
    sched_b = Scheduler()
    thread_b = sched_b.spawn(batch_body)
    sched_b.run()
    assert thread_a.now == thread_b.now
    assert (loop_sys.hierarchy.llc.stats.misses
            == batch_sys.hierarchy.llc.stats.misses)


def test_probe_many_matches_individual_latencies():
    addrs = _addrs(600, mul=3)
    loop_sys = System(SystemConfig.paper_default())
    batch_sys = System(SystemConfig.paper_default())

    loop_latencies = []

    def loop_body(ctx):
        for addr in addrs:
            result = loop_sys.load(ctx, 0, addr, requestor="cpu")
            loop_latencies.append(result.latency)
        yield None

    batch_latencies = []

    def batch_body(ctx):
        batch_latencies.extend(
            batch_sys.probe_many(ctx, 0, addrs, requestor="cpu"))
        yield None

    sched = Scheduler()
    sched.spawn(loop_body)
    sched.run()
    sched = Scheduler()
    sched.spawn(batch_body)
    sched.run()
    assert loop_latencies == batch_latencies


# ----------------------------------------------------------------------
# Scheduler run-to-block fast path
# ----------------------------------------------------------------------


def _random_workload(seed):
    """Randomized deadlock-free plans mixing all three primitive kinds.

    Barrier parties never acquire (a party stuck on the semaphore could
    starve the barrier); every acquire is covered by a dedicated,
    always-runnable releaser thread.
    """
    rng = random.Random(seed)
    barrier_parties = rng.randint(2, 3)
    plans = []
    for _ in range(barrier_parties):
        steps = []
        for _ in range(rng.randint(5, 20)):
            if rng.random() < 0.7:
                steps.append(("advance", rng.randint(0, 9)))
            else:
                steps.append(("barrier",))
        plans.append(steps)
    # Barriers must be hit the same number of times by every party.
    most = max(sum(s == ("barrier",) for s in plan) for plan in plans)
    for t in range(barrier_parties):
        short = most - sum(s == ("barrier",) for s in plans[t])
        plans[t] = plans[t] + [("barrier",)] * short
    acquires = 0
    for _ in range(rng.randint(1, 2)):
        steps = []
        for _ in range(rng.randint(5, 20)):
            if rng.random() < 0.7:
                steps.append(("advance", rng.randint(0, 9)))
            else:
                steps.append(("acquire",))
                acquires += 1
        plans.append(steps)
    releaser = []
    for _ in range(acquires):
        releaser.append(("advance", rng.randint(0, 9)))
        releaser.append(("release",))
    plans.append(releaser or [("advance", 1)])
    return plans, barrier_parties


def _run_plans(plans, barrier_parties, fast_path):
    sched = Scheduler(fast_path=fast_path)
    sem = Semaphore(initial=0, name="s")
    barrier = Barrier(barrier_parties, name="b")
    trace = []

    def body(ctx, steps):
        for step in steps:
            if step[0] == "advance":
                ctx.advance(step[1])
                trace.append((ctx.name, ctx.now))
                yield None
            elif step[0] == "acquire":
                yield sem.acquire()
                trace.append((ctx.name, ctx.now, "acq"))
            elif step[0] == "release":
                yield sem.release()
            else:
                yield barrier.wait()
                trace.append((ctx.name, ctx.now, "bar"))

    for i, steps in enumerate(plans):
        sched.spawn(body, steps, name=f"t{i}")
    end = sched.run()
    return end, trace, sched.fast_resumes


@pytest.mark.parametrize("seed", range(20))
def test_fast_and_slow_paths_produce_identical_traces(seed):
    plans, parties = _random_workload(seed)
    end_fast, trace_fast, resumes_fast = _run_plans(plans, parties, True)
    end_slow, trace_slow, resumes_slow = _run_plans(plans, parties, False)
    assert end_fast == end_slow
    assert trace_fast == trace_slow
    assert resumes_slow == 0  # slow path never takes the inline resume


def test_fast_path_counts_inline_resumes():
    sched = Scheduler()

    def lone(ctx):
        for _ in range(50):
            ctx.advance(1)
            yield None

    sched.spawn(lone)
    sched.run()
    assert sched.fast_resumes == 50


def test_bounded_run_is_resumable_with_fast_path():
    sched = Scheduler()
    seen = []

    def body(ctx):
        for _ in range(10):
            ctx.advance(10)
            seen.append(ctx.now)
            yield None

    sched.spawn(body)
    sched.run(until=35)
    mid = list(seen)
    assert max(mid) <= 45  # paused near the bound, not run to completion
    assert len(mid) < 10
    sched.run()
    assert seen == [10 * (i + 1) for i in range(10)]


def test_deadlock_error_names_the_primitive():
    sched = Scheduler()
    sem = Semaphore(name="handshake")

    def waiter(ctx):
        yield sem.acquire()

    sched.spawn(waiter, name="stuck")
    with pytest.raises(DeadlockError, match=r"stuck.*handshake"):
        sched.run()


# ----------------------------------------------------------------------
# BackgroundNoise windows
# ----------------------------------------------------------------------


def _make_noise(rate, seed=7):
    system = System(SystemConfig.paper_default())
    return BackgroundNoise(system.controller, rate, seed)


def test_noise_zero_rate_never_fires():
    noise = _make_noise(0.0)
    assert noise.run(0, 1_000_000) == 0
    assert noise.injected == 0


def test_noise_empty_or_inverted_window_fires_nothing():
    noise = _make_noise(5.0)
    assert noise.run(100, 100) == 0
    assert noise.run(100, 50) == 0


def test_noise_contiguous_windows_match_one_big_window():
    big = _make_noise(5.0)
    split = _make_noise(5.0)
    total_big = big.run(0, 60_000)
    total_split = sum(split.run(start, start + 10_000)
                      for start in range(0, 60_000, 10_000))
    # The pending-event state carries across contiguous windows, so
    # splitting the window must not create or drop events.
    assert total_big == total_split
    assert big.injected == split.injected


def test_noise_event_spanning_a_gap_is_rescheduled_not_replayed():
    noise = _make_noise(0.05)  # sparse: mean gap 20k cycles
    noise.run(0, 1000)
    pending = noise._next_event
    assert pending is not None and pending >= 1000
    # A window far past the pending event reschedules from its start
    # rather than firing stale events from the skipped-over gap.
    far_start = pending + 500_000
    fired = noise.run(far_start, far_start + 1)
    assert fired == 0
    assert noise._next_event >= far_start


def test_noise_snapshot_round_trip_resumes_stream():
    noise = _make_noise(5.0)
    noise.run(0, 5_000)
    state = noise.snapshot_state()
    a = [noise.run(start, start + 1_000)
         for start in range(5_000, 15_000, 1_000)]
    noise.restore_state(state)
    b = [noise.run(start, start + 1_000)
         for start in range(5_000, 15_000, 1_000)]
    assert a == b
