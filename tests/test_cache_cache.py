"""Unit tests for a single cache level."""

import pytest

from repro.cache import Cache, CacheConfig


def make_cache(size=4096, ways=4, replacement="lru"):
    return Cache(CacheConfig(name="test", size_bytes=size, ways=ways,
                             latency_cycles=4, replacement=replacement))


def test_miss_then_fill_then_hit():
    cache = make_cache()
    assert not cache.access(0x1000)
    cache.fill(0x1000)
    assert cache.access(0x1000)
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1


def test_same_line_different_offsets_hit():
    cache = make_cache()
    cache.fill(0x1000)
    assert cache.access(0x103F)  # same 64B line
    assert not cache.access(0x1040)  # next line


def test_fill_evicts_when_set_full():
    cache = make_cache(size=1024, ways=2)  # 8 sets
    stride = cache.config.num_sets * cache.config.line_bytes
    base = 0x0
    cache.fill(base)
    cache.fill(base + stride)
    evicted = cache.fill(base + 2 * stride)
    assert evicted is not None
    assert evicted.addr == base
    assert not cache.probe(base)


def test_dirty_eviction_reported():
    cache = make_cache(size=1024, ways=1)
    stride = cache.config.num_sets * cache.config.line_bytes
    cache.fill(0x0, dirty=True)
    evicted = cache.fill(stride)
    assert evicted is not None and evicted.dirty
    assert cache.stats.writebacks == 1


def test_write_sets_dirty_bit():
    cache = make_cache(size=1024, ways=1)
    stride = cache.config.num_sets * cache.config.line_bytes
    cache.fill(0x0)
    cache.access(0x0, is_write=True)
    evicted = cache.fill(stride)
    assert evicted.dirty


def test_invalidate_returns_dirty_state():
    cache = make_cache()
    cache.fill(0x1000, dirty=True)
    cache.fill(0x2000, dirty=False)
    assert cache.invalidate(0x1000) is True
    assert cache.invalidate(0x2000) is False
    assert cache.invalidate(0x3000) is None
    assert not cache.probe(0x1000)


def test_probe_has_no_side_effects():
    cache = make_cache()
    cache.fill(0x1000)
    before = cache.stats.hits
    assert cache.probe(0x1000)
    assert cache.stats.hits == before


def test_refill_existing_line_is_noop_eviction():
    cache = make_cache()
    cache.fill(0x1000)
    assert cache.fill(0x1000) is None


def test_resident_lines_reports_set_contents():
    cache = make_cache(size=1024, ways=2)
    stride = cache.config.num_sets * cache.config.line_bytes
    cache.fill(0x0)
    cache.fill(stride)
    assert sorted(cache.resident_lines(0)) == [0, stride]


def test_invalid_config_rejected():
    with pytest.raises(ValueError):
        CacheConfig(name="bad", size_bytes=100, ways=3, latency_cycles=1)
    with pytest.raises(ValueError):
        CacheConfig(name="bad", size_bytes=32, ways=1, latency_cycles=1)
