"""Tests for the CACTI-style LLC latency model (Figs. 2-3 substrate)."""

import pytest

from repro.cache import llc_latency_cycles


def test_table2_calibration_point():
    assert llc_latency_cycles(16, 16) == 32


def test_latency_grows_with_size():
    """Fig. 2: larger LLCs are slower to access."""
    sizes = [2, 4, 8, 16, 32, 64]
    latencies = [llc_latency_cycles(s, 16) for s in sizes]
    assert latencies == sorted(latencies)
    assert latencies[-1] > latencies[0]


def test_latency_grows_with_ways():
    """Fig. 3: higher associativity costs lookup latency."""
    ways = [2, 4, 8, 16, 32, 64, 128]
    latencies = [llc_latency_cycles(16, w) for w in ways]
    assert latencies == sorted(latencies)
    assert latencies[-1] > latencies[0]


def test_invalid_inputs_rejected():
    with pytest.raises(ValueError):
        llc_latency_cycles(0, 16)
    with pytest.raises(ValueError):
        llc_latency_cycles(16, 0)
