"""Integration tests: cache hierarchy over the memory controller."""

import pytest

from repro.cache import CacheHierarchy, HierarchyConfig
from repro.dram import DRAMGeometry, MemoryController, MemoryControllerConfig

GEOM = DRAMGeometry(ranks=1, banks_per_rank=16, rows_per_bank=4096)


def make_hierarchy(**kwargs):
    defaults = dict(num_cores=2, llc_size_mb=2.0, prefetchers_enabled=False)
    defaults.update(kwargs)
    config = HierarchyConfig(**defaults)
    controller = MemoryController(MemoryControllerConfig(geometry=GEOM))
    return CacheHierarchy(config, controller)


def test_cold_access_reaches_memory():
    h = make_hierarchy()
    result = h.access(core=0, addr=0x10000, issued=0)
    assert result.hit_level == 0
    assert result.mem is not None
    assert result.latency > h.config.l1_latency + h.config.l2_latency


def test_warm_access_hits_l1():
    h = make_hierarchy()
    h.access(core=0, addr=0x10000, issued=0)
    result = h.access(core=0, addr=0x10000, issued=1000)
    assert result.hit_level == 1
    assert result.latency == h.config.l1_latency


def test_latency_ordering_by_hit_level():
    """Deeper hits cost strictly more — the §3.2 lookup-latency tax."""
    h = make_hierarchy()
    cold = h.access(core=0, addr=0x20000, issued=0)
    l1 = h.access(core=0, addr=0x20000, issued=10_000)
    # Touch from the other core: it misses L1/L2 but hits shared LLC.
    llc = h.access(core=1, addr=0x20000, issued=20_000)
    assert l1.latency < llc.latency < cold.latency
    assert llc.hit_level == 3


def test_shared_llc_between_cores():
    h = make_hierarchy()
    h.access(core=0, addr=0x30000, issued=0)
    result = h.access(core=1, addr=0x30000, issued=5000)
    assert result.hit_level == 3


def test_clflush_removes_from_all_levels():
    h = make_hierarchy()
    h.access(core=0, addr=0x40000, issued=0)
    h.clflush(core=0, addr=0x40000, issued=1000)
    result = h.access(core=0, addr=0x40000, issued=2000)
    assert result.hit_level == 0


def test_clflush_clean_line_costs_llc_lookup_only():
    h = make_hierarchy()
    h.access(core=0, addr=0x40000, issued=0)
    flush = h.clflush(core=0, addr=0x40000, issued=1000)
    assert flush.latency == h.llc.latency_cycles
    assert flush.writebacks == 0


def test_clflush_dirty_line_pays_writeback():
    """§3.2: clflush puts the write-back latency on the critical path."""
    h = make_hierarchy()
    h.access(core=0, addr=0x40000, issued=0, is_write=True)
    flush = h.clflush(core=0, addr=0x40000, issued=1000)
    assert flush.writebacks == 1
    assert flush.latency > h.llc.latency_cycles


def test_clflush_flushes_other_cores_copies():
    h = make_hierarchy()
    h.access(core=0, addr=0x50000, issued=0)
    h.access(core=1, addr=0x50000, issued=100)
    h.clflush(core=0, addr=0x50000, issued=1000)
    result = h.access(core=1, addr=0x50000, issued=2000)
    assert result.hit_level == 0


def test_inclusive_llc_back_invalidates_upper_levels():
    """Evicting a line from the LLC must evict it from L1/L2 too —
    otherwise eviction-set attacks could never push a victim to DRAM."""
    h = make_hierarchy(llc_size_mb=1.0 / 16)  # tiny 64 KB LLC, 16 ways
    target = 0x0
    h.access(core=0, addr=target, issued=0)
    assert h.l1[0].probe(target)
    for i, addr in enumerate(h.build_eviction_set(target, size=64)):
        h.access(core=0, addr=addr, issued=1000 + 1000 * i)
    assert not h.llc.probe(target)
    assert not h.l1[0].probe(target)
    result = h.access(core=0, addr=target, issued=10_000_000)
    assert result.hit_level == 0


def test_build_eviction_set_same_llc_set():
    h = make_hierarchy()
    target = 0x12340
    eviction_set = h.build_eviction_set(target)
    assert len(eviction_set) == h.config.llc_ways
    target_set = h.llc.set_index_of(target)
    for addr in eviction_set:
        assert h.llc.set_index_of(addr) == target_set
        assert h.llc.line_of(addr) != h.llc.line_of(target)


def test_nt_access_bypass_probability_zero_uses_caches():
    h = make_hierarchy(nt_bypass_probability=0.0)
    h.access(core=0, addr=0x60000, issued=0)
    result = h.nt_access(core=0, addr=0x60000, issued=1000)
    assert not result.bypassed
    assert result.hit_level == 1


def test_nt_access_bypass_probability_one_goes_direct():
    h = make_hierarchy(nt_bypass_probability=1.0)
    h.access(core=0, addr=0x60000, issued=0)
    result = h.nt_access(core=0, addr=0x60000, issued=1000)
    assert result.bypassed
    assert result.mem is not None


def test_nt_access_unreliable_at_intermediate_probability():
    """Table 1: NT hints give no ISA guarantee — some accesses bypass,
    some do not."""
    h = make_hierarchy(nt_bypass_probability=0.5)
    outcomes = set()
    for i in range(64):
        result = h.nt_access(core=0, addr=0x70000 + 64 * i, issued=i * 1000)
        outcomes.add(result.bypassed)
    assert outcomes == {True, False}


def test_prefetcher_generates_memory_traffic():
    controller = MemoryController(MemoryControllerConfig(geometry=GEOM))
    h = CacheHierarchy(HierarchyConfig(num_cores=1, llc_size_mb=2.0,
                                       prefetchers_enabled=True), controller)
    # A strided stream from one PC trains the IP-stride prefetcher.
    for i in range(8):
        h.access(core=0, addr=0x100000 + i * 64, issued=i * 1000, pc=0x400)
    assert h.stats.prefetches_issued > 0


def test_dirty_writeback_reaches_memory_controller():
    h = make_hierarchy(llc_size_mb=1.0 / 16)
    target = 0x0
    h.access(core=0, addr=target, issued=0, is_write=True)
    for i, addr in enumerate(h.build_eviction_set(target, size=64)):
        h.access(core=0, addr=addr, issued=1000 + 1000 * i)
    assert h.stats.memory_writebacks >= 1


def test_invalid_config_rejected():
    with pytest.raises(ValueError):
        HierarchyConfig(num_cores=0)
    with pytest.raises(ValueError):
        HierarchyConfig(nt_bypass_probability=1.5)
