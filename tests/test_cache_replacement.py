"""Unit tests for replacement policies."""

import pytest

from repro.cache import (
    LRUPolicy,
    RandomPolicy,
    SRRIPPolicy,
    make_replacement_policy,
)


def test_lru_evicts_oldest():
    policy = LRUPolicy(num_sets=1, ways=4)
    valid = [True] * 4
    for way in range(4):
        policy.on_fill(0, way)
    policy.on_hit(0, 0)  # way 0 becomes most recent
    assert policy.victim(0, valid) == 1


def test_lru_prefers_invalid_way():
    policy = LRUPolicy(num_sets=1, ways=4)
    valid = [True, False, True, True]
    assert policy.victim(0, valid) == 1


def test_srrip_hit_promotes_to_zero():
    policy = SRRIPPolicy(num_sets=1, ways=2)
    valid = [True, True]
    policy.on_fill(0, 0)
    policy.on_fill(0, 1)
    policy.on_hit(0, 0)
    # Way 0 has RRPV 0, way 1 has MAX-1; aging finds way 1 first.
    assert policy.victim(0, valid) == 1


def test_srrip_can_retain_reused_line_against_fills():
    """The property that defeats naive eviction sets (Table 1): a re-used
    line survives a burst of single-use fills."""
    policy = SRRIPPolicy(num_sets=1, ways=4)
    valid = [True] * 4
    for way in range(4):
        policy.on_fill(0, way)
    policy.on_hit(0, 2)  # target line re-referenced
    victims = [policy.victim(0, valid) for _ in range(3)]
    assert 2 not in victims


def test_random_is_deterministic_under_seed():
    a = RandomPolicy(num_sets=1, ways=8, seed=7)
    b = RandomPolicy(num_sets=1, ways=8, seed=7)
    valid = [True] * 8
    assert [a.victim(0, valid) for _ in range(10)] == \
           [b.victim(0, valid) for _ in range(10)]


def test_factory_dispatch():
    assert isinstance(make_replacement_policy("lru", 4, 2), LRUPolicy)
    assert isinstance(make_replacement_policy("srrip", 4, 2), SRRIPPolicy)
    assert isinstance(make_replacement_policy("random", 4, 2), RandomPolicy)
    with pytest.raises(ValueError):
        make_replacement_policy("fifo", 4, 2)


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        LRUPolicy(num_sets=0, ways=4)
