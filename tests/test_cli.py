"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_table2_command(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out
    assert "DDR4-2400" in out


def test_covert_command_single_attack(capsys):
    assert main(["covert", "--attack", "impact-pnm", "--bits", "64"]) == 0
    out = capsys.readouterr().out
    assert "impact-pnm" in out
    assert "Mb/s" in out


def test_covert_command_rejects_unknown_attack():
    with pytest.raises(SystemExit):
        main(["covert", "--attack", "rowhammer"])


def test_covert_eviction_switches_to_xor_mapping(capsys):
    assert main(["covert", "--attack", "drama-eviction", "--bits", "16"]) == 0
    assert "drama-eviction" in capsys.readouterr().out


def test_sidechannel_command(capsys):
    assert main(["sidechannel", "--banks", "64", "--rounds", "10"]) == 0
    out = capsys.readouterr().out
    assert "64 banks" in out
    assert "leaked" in out


def test_recon_command(capsys):
    assert main(["recon", "--mapping", "row"]) == 0
    out = capsys.readouterr().out
    assert "bank bits" in out
    assert "'row'" in out


def test_detect_command(capsys):
    assert main(["detect", "--bits", "48"]) == 0
    out = capsys.readouterr().out
    assert "impact-pnm" in out
    assert "no cache activity" in out


def test_defenses_command_security_only(capsys):
    assert main(["defenses", "--bits", "64"]) == 0
    out = capsys.readouterr().out
    assert "mpr" in out
    assert "eliminated" in out


def test_report_command_writes_markdown_and_json(tmp_path, capsys):
    import json

    assert main(["report", "fig8", "--llc-mb", "8", "--bits", "64",
                 "--attacks", "impact-pnm", "impact-pum", "--jobs", "1",
                 "--out-dir", str(tmp_path), "--trace"]) == 0
    out = capsys.readouterr().out
    assert "report written" in out

    md = (tmp_path / "fig8.md").read_text()
    assert "# Run report: fig8" in md
    assert "IMPACT-PnM" in md and "IMPACT-PuM" in md
    for column in ("BER 95% CI", "Capacity Mb/s", "Leakage t"):
        assert column in md
    assert "Phase profile" in md
    assert "Trace summary" in md

    report = json.loads((tmp_path / "fig8.json").read_text())
    assert report["experiment"] == "fig8"
    point = report["points"][0]
    quality = point["payload"]["attacks"]["IMPACT-PnM"]
    for key in ("throughput_mbps", "ber", "ber_ci95", "capacity_mbps",
                "leakage_t", "eye_gap"):
        assert key in quality
    assert point["metrics"]["counters"]["channel.bits"] > 0
    assert "transmit:IMPACT-PnM" in point["metrics"]["phases"]
    assert point["trace_summary"]["events"] > 0
    assert report["totals"]["counters"]["dram.RD"] > 0


def test_report_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["report", "fig99"])


def test_trace_summary_of_existing_file(tmp_path, capsys):
    out_path = str(tmp_path / "t.trace.json")
    assert main(["trace", "impact-pnm", "--bits", "16",
                 "--out", out_path]) == 0
    capsys.readouterr()
    assert main(["trace", "impact-pnm", "--summary",
                 "--out", out_path]) == 0
    out = capsys.readouterr().out
    assert "events" in out
    assert "receiver" in out and "sender" in out
    assert "cycle span" in out


def test_trace_summary_missing_file(tmp_path, capsys):
    assert main(["trace", "impact-pnm", "--summary",
                 "--out", str(tmp_path / "absent.json")]) == 2
    assert "no trace file" in capsys.readouterr().err


def test_cache_command_stats_and_prune(tmp_path, capsys):
    from repro.exp.cache import ResultCache
    from repro.exp.warmstore import WarmStore

    results_dir = tmp_path / "results"
    warm_dir = tmp_path / "warm"
    ResultCache(results_dir, version="old",
                max_entries=None).put("exp", {"a": 1}, {"r": 1})
    WarmStore(warm_dir, version="old").store_artifact(("r",), [1])
    argv = ["cache", "stats", "--results-dir", str(results_dir),
            "--warm-dir", str(warm_dir)]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "results" in out and "warm" in out

    assert main(["cache", "prune", "--results-dir", str(results_dir),
                 "--warm-dir", str(warm_dir)]) == 0
    out = capsys.readouterr().out
    assert "removed 1 stale entries" in out
    assert ResultCache(results_dir).entry_count() == 0


def test_top_once_offline_dir(tmp_path, capsys, monkeypatch):
    from repro.exp import run_sweep
    from repro.exp.sweep import SweepPoint
    from repro.obs import telemetry

    tele_dir = str(tmp_path / "events")
    points = [SweepPoint("t", telemetry.sleep_point, {"seconds": 0.0,
                                                      "tag": i})
              for i in range(3)]
    run_sweep(points, jobs=1, telemetry_dir=tele_dir)
    telemetry.reset_sink()
    assert main(["top", "--once", "--dir", tele_dir]) == 0
    out = capsys.readouterr().out
    assert "repro top" in out
    assert "points 3/3 done" in out


def test_top_unreachable_daemon(capsys):
    # Port 1 is never a repro serve daemon.
    assert main(["top", "--once", "--port", "1", "--timeout", "2"]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_bench_history_table_and_markdown(tmp_path, capsys):
    import json

    (tmp_path / "BENCH_PR1.json").write_text(json.dumps(
        {"simulator": {"ops_per_sec": 100}, "suite_seconds": 9.0}))
    (tmp_path / "BENCH_PR2.json").write_text(json.dumps(
        {"simulator": {"ops_per_sec": 150}, "suite_seconds": 6.0}))
    out_md = str(tmp_path / "history.md")
    assert main(["bench", "history", "--bench-dir", str(tmp_path),
                 "--out", out_md]) == 0
    out = capsys.readouterr().out
    assert "benchmark history" in out
    assert "PR1" in out and "PR2" in out
    assert "+50.0%" in out
    with open(out_md) as handle:
        markdown = handle.read()
    assert markdown.startswith("# Benchmark history")
    assert "| simulator.ops_per_sec |" in markdown


def test_serve_parser_accepts_telemetry_dir():
    args = build_parser().parse_args(
        ["serve", "--telemetry-dir", "/tmp/x", "--port", "0"])
    assert args.telemetry_dir == "/tmp/x"
