"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_table2_command(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out
    assert "DDR4-2400" in out


def test_covert_command_single_attack(capsys):
    assert main(["covert", "--attack", "impact-pnm", "--bits", "64"]) == 0
    out = capsys.readouterr().out
    assert "impact-pnm" in out
    assert "Mb/s" in out


def test_covert_command_rejects_unknown_attack():
    with pytest.raises(SystemExit):
        main(["covert", "--attack", "rowhammer"])


def test_covert_eviction_switches_to_xor_mapping(capsys):
    assert main(["covert", "--attack", "drama-eviction", "--bits", "16"]) == 0
    assert "drama-eviction" in capsys.readouterr().out


def test_sidechannel_command(capsys):
    assert main(["sidechannel", "--banks", "64", "--rounds", "10"]) == 0
    out = capsys.readouterr().out
    assert "64 banks" in out
    assert "leaked" in out


def test_recon_command(capsys):
    assert main(["recon", "--mapping", "row"]) == 0
    out = capsys.readouterr().out
    assert "bank bits" in out
    assert "'row'" in out


def test_detect_command(capsys):
    assert main(["detect", "--bits", "48"]) == 0
    out = capsys.readouterr().out
    assert "impact-pnm" in out
    assert "no cache activity" in out


def test_defenses_command_security_only(capsys):
    assert main(["defenses", "--bits", "64"]) == 0
    out = capsys.readouterr().out
    assert "mpr" in out
    assert "eliminated" in out
