"""Tests for the §6 defenses: security elimination + MPR planning."""

import pytest

from repro import System, SystemConfig
from repro.attacks import DramaClflushChannel, ImpactPnmChannel, ImpactPumChannel
from repro.cache import HierarchyConfig
from repro.defenses import (
    DefenseSecurityReport,
    channel_capacity_bits,
    evaluate_channel_under_defense,
    plan_partitions,
)
from repro.defenses.partitioning import ProcessDemand
from repro.dram import DRAMGeometry


def small_config():
    return SystemConfig(
        geometry=DRAMGeometry(ranks=1, banks_per_rank=16, rows_per_bank=4096),
        hierarchy=HierarchyConfig(num_cores=2, llc_size_mb=2.0,
                                  prefetchers_enabled=False),
        num_cores=2)


# ---------------------------------------------------------------------------
# Channel capacity
# ---------------------------------------------------------------------------

def test_capacity_extremes():
    assert channel_capacity_bits(0.0) == 1.0
    assert channel_capacity_bits(0.5) == pytest.approx(0.0, abs=1e-12)
    assert channel_capacity_bits(1.0) == 1.0  # inverted but perfect


def test_capacity_monotone_toward_half():
    assert (channel_capacity_bits(0.1) > channel_capacity_bits(0.3)
            > channel_capacity_bits(0.45))


def test_capacity_validation():
    with pytest.raises(ValueError):
        channel_capacity_bits(1.5)


# ---------------------------------------------------------------------------
# Security evaluation
# ---------------------------------------------------------------------------

def test_undefended_channel_survives():
    report = evaluate_channel_under_defense(
        lambda s: ImpactPnmChannel(s), "open", base_config=small_config(),
        bits=64)
    assert not report.channel_eliminated
    assert report.capacity_bits_per_symbol > 0.9


@pytest.mark.parametrize("defense", ["crp", "ctd"])
def test_timing_defenses_eliminate_pnm_channel(defense):
    report = evaluate_channel_under_defense(
        lambda s: ImpactPnmChannel(s), defense, base_config=small_config(),
        bits=128)
    assert report.channel_eliminated
    assert abs(report.error_rate - 0.5) < 0.15
    assert report.effective_throughput_mbps < 0.5


@pytest.mark.parametrize("defense", ["crp", "ctd"])
def test_timing_defenses_eliminate_pum_channel(defense):
    report = evaluate_channel_under_defense(
        lambda s: ImpactPumChannel(s), defense, base_config=small_config(),
        bits=128)
    assert report.channel_eliminated


def test_ctd_also_kills_cache_mediated_channel():
    report = evaluate_channel_under_defense(
        lambda s: DramaClflushChannel(s), "ctd", base_config=small_config(),
        bits=96)
    assert report.channel_eliminated


def test_mpr_blocks_channel_outright():
    report = evaluate_channel_under_defense(
        lambda s: ImpactPnmChannel(s), "mpr", base_config=small_config(),
        bits=32)
    assert report.blocked
    assert report.channel_eliminated
    assert report.capacity_bits_per_symbol == 0.0
    assert "denied" in report.summary()


def test_report_summary_mentions_survival():
    report = evaluate_channel_under_defense(
        lambda s: ImpactPnmChannel(s), "open", base_config=small_config(),
        bits=64)
    assert "SURVIVES" in report.summary()


# ---------------------------------------------------------------------------
# MPR planning (the §6 drawbacks, quantified)
# ---------------------------------------------------------------------------

GEOM = DRAMGeometry(ranks=1, banks_per_rank=8, rows_per_bank=1024)
BANK_BYTES = GEOM.rows_per_bank * GEOM.row_bytes


def test_partition_plan_assigns_exclusive_banks():
    demands = [ProcessDemand("a", BANK_BYTES), ProcessDemand("b", BANK_BYTES * 2)]
    plan = plan_partitions(GEOM, demands)
    assert plan.assignments["a"] == [0]
    assert plan.assignments["b"] == [1, 2]
    assert not plan.rejected
    all_banks = [b for banks in plan.assignments.values() for b in banks]
    assert len(all_banks) == len(set(all_banks))


def test_partition_plan_rejects_overflow():
    """Drawback 1: the fixed bank count limits concurrency."""
    demands = [ProcessDemand(f"p{i}", BANK_BYTES * 3) for i in range(4)]
    plan = plan_partitions(GEOM, demands)
    assert plan.rejected  # 4 x 3 banks > 8 banks
    assert plan.banks_used <= GEOM.num_banks


def test_partition_plan_underutilization():
    """Drawback 2: bank-granular allocation strands capacity."""
    demands = [ProcessDemand("tiny", footprint_bytes=4096)]
    plan = plan_partitions(GEOM, demands)
    assert plan.utilization(demands) < 0.01


def test_partition_plan_duplication():
    """Drawback 3: shared data is duplicated per partition."""
    demands = [
        ProcessDemand("a", BANK_BYTES, shared_bytes=BANK_BYTES // 2),
        ProcessDemand("b", BANK_BYTES, shared_bytes=BANK_BYTES // 2),
        ProcessDemand("c", BANK_BYTES, shared_bytes=BANK_BYTES // 2),
    ]
    plan = plan_partitions(GEOM, demands)
    assert plan.duplicated_shared_bytes(demands) == BANK_BYTES


def test_partition_plan_duplicate_names_rejected():
    with pytest.raises(ValueError):
        plan_partitions(GEOM, [ProcessDemand("a", 1), ProcessDemand("a", 1)])


def test_process_demand_validation():
    with pytest.raises(ValueError):
        ProcessDemand("x", footprint_bytes=-1)
    with pytest.raises(ValueError):
        ProcessDemand("x", footprint_bytes=10, shared_bytes=20)
