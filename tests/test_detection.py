"""Tests for the cache-monitor detector and its IMPACT blind spot (§3)."""

from dataclasses import replace

import pytest

from repro import System, SystemConfig
from repro.attacks import (
    DmaEngineChannel,
    DramaClflushChannel,
    DramaEvictionChannel,
    ImpactPnmChannel,
    ImpactPumChannel,
)
from repro.cache import HierarchyConfig
from repro.cache.hierarchy import RequestorCacheStats
from repro.detection import (
    CacheMonitorDetector,
    DetectorConfig,
    run_detection_experiment,
)
from repro.dram import DRAMGeometry


def small_config(mapping="row"):
    return SystemConfig(
        geometry=DRAMGeometry(ranks=1, banks_per_rank=16, rows_per_bank=4096),
        mapping=mapping,
        hierarchy=HierarchyConfig(num_cores=2, llc_size_mb=2.0,
                                  prefetchers_enabled=False),
        num_cores=2)


# ---------------------------------------------------------------------------
# Detector mechanics
# ---------------------------------------------------------------------------

def make_stats(accesses=0, misses=0, clflushes=0, window=100_000):
    stats = RequestorCacheStats(accesses=accesses, llc_misses=misses,
                                clflushes=clflushes, first_seen_cycle=0,
                                last_seen_cycle=window)
    return stats


def test_detector_flags_flush_storm():
    detector = CacheMonitorDetector()
    report = detector.inspect("p", make_stats(accesses=100, clflushes=100))
    assert report.flagged
    assert "flush storm" in report.reason


def test_detector_flags_miss_anomaly():
    detector = CacheMonitorDetector()
    report = detector.inspect("p", make_stats(accesses=200, misses=190))
    assert report.flagged
    assert "miss anomaly" in report.reason


def test_detector_passes_benign_profile():
    detector = CacheMonitorDetector()
    # 5% miss ratio, no flushes: a normal workload.
    report = detector.inspect("p", make_stats(accesses=10_000, misses=500))
    assert not report.flagged


def test_detector_silent_process_is_invisible():
    detector = CacheMonitorDetector()
    report = detector.inspect("p", make_stats())
    assert not report.flagged
    assert report.reason == "no cache activity"


def test_detector_config_validation():
    with pytest.raises(ValueError):
        DetectorConfig(min_events=0)


def test_report_row_rendering():
    detector = CacheMonitorDetector()
    row = detector.inspect("p", make_stats(accesses=100, clflushes=200)).row()
    assert row["requestor"] == "p"
    assert row["flagged"] is True


# ---------------------------------------------------------------------------
# The §3 experiment: who gets caught
# ---------------------------------------------------------------------------

def test_drama_clflush_is_detected():
    reports = run_detection_experiment(
        lambda s: DramaClflushChannel(s), small_config, bits=96)
    assert reports["receiver"].flagged
    assert reports["sender"].clflushes > 0


def test_drama_eviction_is_detected():
    reports = run_detection_experiment(
        lambda s: DramaEvictionChannel(s), lambda: small_config("xor"),
        bits=48)
    assert reports["sender"].flagged or reports["receiver"].flagged


def test_impact_pnm_is_invisible_to_cache_monitors():
    """§3: PiM attacks completely bypass the cache hierarchy — every
    counter the detector can read is zero."""
    reports = run_detection_experiment(
        lambda s: ImpactPnmChannel(s), small_config, bits=128)
    for who in ("sender", "receiver"):
        report = reports[who]
        assert not report.flagged
        assert report.accesses == 0
        assert report.clflushes == 0
        assert report.reason == "no cache activity"


def test_impact_pum_is_invisible_to_cache_monitors():
    reports = run_detection_experiment(
        lambda s: ImpactPumChannel(s), small_config, bits=64)
    for who in ("sender", "receiver"):
        assert reports[who].accesses == 0
        assert not reports[who].flagged


def test_dma_channel_also_evades_cache_monitors():
    """Table 1: DMA likewise bypasses the caches (its weakness is timing
    resolution, not detectability by cache monitors)."""
    reports = run_detection_experiment(
        lambda s: DmaEngineChannel(s), small_config, bits=96)
    for who in ("sender", "receiver"):
        assert reports[who].accesses == 0
        assert not reports[who].flagged
