"""Unit and property tests for DRAM address mappings."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram import (
    DRAMGeometry,
    LineInterleavedMapping,
    RowInterleavedMapping,
    XorBankMapping,
    make_mapping,
)

GEOM = DRAMGeometry(ranks=1, banks_per_rank=16, rows_per_bank=1024)
MAPPINGS = {
    "row": RowInterleavedMapping(GEOM),
    "line": LineInterleavedMapping(GEOM),
    "xor": XorBankMapping(GEOM),
}


def test_geometry_defaults_match_table2():
    geom = DRAMGeometry()
    assert geom.banks_per_rank == 16
    assert geom.ranks == 4
    assert geom.channels == 1
    assert geom.row_bytes == 8192


def test_geometry_validation():
    with pytest.raises(ValueError):
        DRAMGeometry(ranks=0)
    with pytest.raises(ValueError):
        DRAMGeometry(row_bytes=100, line_bytes=64)


def test_make_mapping_dispatch():
    for name, cls in [("row", RowInterleavedMapping),
                      ("line", LineInterleavedMapping),
                      ("xor", XorBankMapping)]:
        assert isinstance(make_mapping(name, GEOM), cls)
    with pytest.raises(ValueError):
        make_mapping("banana", GEOM)


def test_row_interleaved_keeps_row_contiguous():
    mapping = MAPPINGS["row"]
    base = mapping.encode(bank=3, row=7, col=0)
    for col in (0, 64, GEOM.row_bytes - 1):
        loc = mapping.decode(base + col)
        assert (loc.bank, loc.row, loc.col) == (3, 7, col)


def test_line_interleaved_stripes_lines_across_banks():
    mapping = MAPPINGS["line"]
    locs = [mapping.decode(line * GEOM.line_bytes) for line in range(GEOM.num_banks)]
    assert [loc.bank for loc in locs] == list(range(GEOM.num_banks))


def test_xor_mapping_spreads_same_raw_bank_across_rows():
    mapping = MAPPINGS["xor"]
    stride = GEOM.row_bytes * GEOM.num_banks  # same raw bank, consecutive rows
    banks = {mapping.decode(row * stride).bank for row in range(GEOM.num_banks)}
    assert len(banks) == GEOM.num_banks


def test_xor_requires_power_of_two_banks():
    geom = DRAMGeometry(ranks=1, banks_per_rank=12, rows_per_bank=64)
    with pytest.raises(ValueError):
        XorBankMapping(geom)


def test_out_of_range_rejected():
    mapping = MAPPINGS["row"]
    with pytest.raises(ValueError):
        mapping.decode(GEOM.capacity_bytes)
    with pytest.raises(ValueError):
        mapping.encode(bank=GEOM.num_banks, row=0)
    with pytest.raises(ValueError):
        mapping.encode(bank=0, row=GEOM.rows_per_bank)
    with pytest.raises(ValueError):
        mapping.encode(bank=0, row=0, col=GEOM.row_bytes)


@pytest.mark.parametrize("name", sorted(MAPPINGS))
@given(addr=st.integers(min_value=0, max_value=GEOM.capacity_bytes - 1))
@settings(max_examples=200)
def test_decode_encode_roundtrip(name, addr):
    """encode(decode(addr)) == addr for every mapping (invertibility)."""
    mapping = MAPPINGS[name]
    loc = mapping.decode(addr)
    assert mapping.encode(loc.bank, loc.row, loc.col) == addr
    assert 0 <= loc.bank < GEOM.num_banks
    assert 0 <= loc.row < GEOM.rows_per_bank
    assert 0 <= loc.col < GEOM.row_bytes


@pytest.mark.parametrize("name", sorted(MAPPINGS))
@given(bank=st.integers(min_value=0, max_value=GEOM.num_banks - 1),
       row=st.integers(min_value=0, max_value=GEOM.rows_per_bank - 1),
       col=st.integers(min_value=0, max_value=GEOM.row_bytes - 1))
@settings(max_examples=200)
def test_encode_decode_roundtrip(name, bank, row, col):
    """decode(encode(loc)) == loc — the attacker's massaging primitive is
    exact for every mapping."""
    mapping = MAPPINGS[name]
    addr = mapping.encode(bank, row, col)
    loc = mapping.decode(addr)
    assert (loc.bank, loc.row, loc.col) == (bank, row, col)


def test_subarray_geometry():
    geom = DRAMGeometry(ranks=1, banks_per_rank=16, rows_per_bank=1024,
                        subarrays_per_bank=16)
    assert geom.rows_per_subarray == 64
    assert geom.subarray_of_row(0) == 0
    assert geom.subarray_of_row(63) == 0
    assert geom.subarray_of_row(64) == 1


def test_subarray_validation():
    import pytest as _pytest
    with _pytest.raises(ValueError):
        DRAMGeometry(rows_per_bank=100, subarrays_per_bank=33)
