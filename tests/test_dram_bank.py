"""Unit tests for the DRAM bank row-buffer state machine."""

import pytest

from repro.dram import AccessKind, Bank, DRAMTimings

T = DRAMTimings()


def make_bank(**kwargs):
    return Bank(index=0, timings=DRAMTimings(**kwargs))


def test_first_access_is_empty():
    bank = make_bank()
    result = bank.access(row=5, issued=0)
    assert result.kind is AccessKind.EMPTY
    assert result.latency == T.empty_cycles
    assert bank.open_row == 5


def test_repeat_access_is_hit():
    bank = make_bank()
    bank.access(row=5, issued=0)
    result = bank.access(row=5, issued=1000)
    assert result.kind is AccessKind.HIT
    assert result.latency == T.hit_cycles


def test_different_row_is_conflict():
    bank = make_bank()
    bank.access(row=5, issued=0)
    result = bank.access(row=9, issued=1000)
    assert result.kind is AccessKind.CONFLICT
    assert result.latency == T.conflict_cycles
    assert bank.open_row == 9


def test_conflict_hit_gap_matches_sec31():
    """The attacker-observable gap (§3.1, ~74 cycles at DDR4-2400/2.6GHz)."""
    bank = make_bank()
    bank.access(row=1, issued=0)
    hit = bank.access(row=1, issued=500)
    conflict = bank.access(row=2, issued=1000)
    gap = conflict.latency - hit.latency
    assert gap == T.conflict_hit_gap_cycles
    assert 60 <= gap <= 80


def test_busy_bank_queues_requests():
    bank = make_bank()
    first = bank.access(row=1, issued=0)
    second = bank.access(row=1, issued=first.finish - 10)
    assert second.service_start == first.finish
    assert second.queue_delay == 10
    assert second.latency == T.hit_cycles + 10


def test_close_after_auto_precharges():
    """Closed-row policy: the next access always sees EMPTY, never HIT."""
    bank = make_bank()
    bank.access(row=1, issued=0, close_after=True)
    assert bank.open_row is None
    result = bank.access(row=1, issued=1000, close_after=True)
    assert result.kind is AccessKind.EMPTY


def test_close_after_hides_precharge_but_occupies_bank():
    bank = make_bank()
    first = bank.access(row=1, issued=0, close_after=True)
    # Precharge is hidden: back-to-back access queues behind finish + tRP.
    second = bank.access(row=2, issued=first.finish)
    assert second.service_start == first.finish + T.rp_cycles
    assert second.kind is AccessKind.EMPTY


def test_activate_hit_costs_nothing_extra():
    bank = make_bank()
    bank.activate(row=3, issued=0)
    result = bank.activate(row=3, issued=500)
    assert result.kind is AccessKind.HIT
    assert result.latency == 0


def test_activate_conflict_pays_precharge():
    bank = make_bank()
    bank.activate(row=3, issued=0)
    result = bank.activate(row=4, issued=500)
    assert result.kind is AccessKind.CONFLICT
    assert result.latency == T.rp_cycles + T.rcd_cycles


def test_row_timeout_closes_idle_row():
    bank = make_bank(row_timeout_ns=100.0)
    first = bank.access(row=1, issued=0)
    timeout = bank.timings.row_timeout_cycles
    # Within the timeout: still a hit.
    within = bank.access(row=1, issued=first.finish + timeout - 1)
    assert within.kind is AccessKind.HIT
    # Beyond the timeout: the row auto-precharged.
    beyond = bank.access(row=1, issued=within.finish + timeout + 1)
    assert beyond.kind is AccessKind.EMPTY


def test_row_timeout_turns_conflict_into_empty():
    bank = make_bank(row_timeout_ns=100.0)
    first = bank.access(row=1, issued=0)
    timeout = bank.timings.row_timeout_cycles
    result = bank.access(row=2, issued=first.finish + timeout + 1)
    assert result.kind is AccessKind.EMPTY


def test_precharge_closes_row():
    bank = make_bank()
    bank.access(row=1, issued=0)
    finish = bank.precharge(issued=1000)
    assert bank.open_row is None
    assert finish == 1000 + T.rp_cycles


def test_precharge_idempotent_when_closed():
    bank = make_bank()
    assert bank.precharge(issued=50) == 50


def test_rowclone_fpm_latency_and_state():
    bank = make_bank()
    bank.activate(row=10, issued=0)  # src row open: fast FPM
    result = bank.rowclone_fpm(src_row=10, dst_row=20, issued=500)
    assert result.latency == T.rowclone_fpm_cycles
    assert bank.open_row == 20


def test_rowclone_conflict_pays_extra_precharge():
    """The PuM receiver's decodable signal: a perturbed row buffer makes the
    probe RowClone slower by tRP (§4.2)."""
    bank = make_bank()
    bank.activate(row=99, issued=0)  # unrelated row open
    result = bank.rowclone_fpm(src_row=10, dst_row=20, issued=500)
    assert result.kind is AccessKind.CONFLICT
    assert result.latency == T.rowclone_fpm_cycles + T.rp_cycles


def test_refresh_closes_row_and_blocks():
    bank = make_bank()
    bank.access(row=1, issued=0)
    bank.apply_refresh(until=5000)
    assert bank.open_row is None
    result = bank.access(row=1, issued=4000)
    assert result.service_start == 5000


def test_stats_accumulate():
    bank = make_bank()
    bank.access(row=1, issued=0)
    bank.access(row=1, issued=200)
    bank.access(row=2, issued=400)
    assert bank.stats.empties == 1
    assert bank.stats.hits == 1
    assert bank.stats.conflicts == 1
    assert bank.stats.accesses == 3
    assert bank.stats.hit_rate == pytest.approx(1 / 3)


def test_snapshot_reports_state():
    bank = make_bank()
    bank.access(row=7, issued=0)
    snap = bank.snapshot()
    assert snap["open_row"] == 7
    assert snap["empties"] == 1
