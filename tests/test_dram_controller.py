"""Unit tests for the memory controller: policies, defenses, RowClone."""

import pytest

from repro.dram import (
    AccessKind,
    DRAMGeometry,
    DRAMTimings,
    MemoryController,
    MemoryControllerConfig,
    PartitionViolationError,
    RowPolicy,
)

GEOM = DRAMGeometry(ranks=1, banks_per_rank=16, rows_per_bank=1024)


def make_controller(**kwargs):
    defaults = dict(geometry=GEOM)
    defaults.update(kwargs)
    return MemoryController(MemoryControllerConfig(**defaults))


def test_access_decodes_and_opens_row():
    mc = make_controller()
    addr = mc.address_of(bank=3, row=17)
    result = mc.access(addr, issued=0)
    assert result.bank == 3
    assert result.row == 17
    assert mc.open_rows()[3] == 17


def test_queue_cycles_added():
    mc = make_controller(queue_cycles=10)
    t = mc.config.timings
    result = mc.access(mc.address_of(0, 0), issued=0)
    assert result.latency == 10 + t.empty_cycles


def test_open_row_policy_preserves_hits():
    mc = make_controller()
    addr = mc.address_of(bank=0, row=5)
    mc.access(addr, issued=0)
    result = mc.access(addr, issued=1000)
    assert result.kind is AccessKind.HIT


def test_closed_row_policy_eliminates_hits():
    """CRP defense (§6): every access is a row miss."""
    mc = make_controller(row_policy=RowPolicy.CLOSED)
    addr = mc.address_of(bank=0, row=5)
    for issued in (0, 1000, 2000):
        result = mc.access(addr, issued=issued)
        assert result.kind is AccessKind.EMPTY


def test_closed_row_policy_never_conflicts():
    mc = make_controller(row_policy=RowPolicy.CLOSED)
    a = mc.address_of(bank=0, row=5)
    b = mc.address_of(bank=0, row=9)
    mc.access(a, issued=0)
    result = mc.access(b, issued=1000)
    assert result.kind is AccessKind.EMPTY


def test_constant_time_flattens_latencies():
    """CTD defense (§6): hit and conflict return after identical latency."""
    mc = make_controller(constant_time=True)
    a = mc.address_of(bank=0, row=5)
    b = mc.address_of(bank=0, row=9)
    first = mc.access(a, issued=0)
    hit = mc.access(a, issued=10_000)
    conflict = mc.access(b, issued=20_000)
    assert first.latency == hit.latency == conflict.latency


def test_constant_time_matches_worst_case():
    mc = make_controller(constant_time=True, queue_cycles=4)
    t = mc.config.timings
    result = mc.access(mc.address_of(0, 0), issued=0)
    assert result.latency == 4 + t.conflict_cycles


def test_partitioning_blocks_foreign_requestor():
    """MPR defense (§6): bank ownership is exclusive."""
    mc = make_controller()
    mc.partition_banks("victim", [0, 1, 2])
    addr = mc.address_of(bank=1, row=0)
    mc.access(addr, issued=0, requestor="victim")
    with pytest.raises(PartitionViolationError):
        mc.access(addr, issued=100, requestor="attacker")


def test_partitioning_allows_unowned_banks():
    mc = make_controller()
    mc.partition_banks("victim", [0])
    addr = mc.address_of(bank=5, row=0)
    mc.access(addr, issued=0, requestor="attacker")  # no error


def test_partition_conflicting_assignment_rejected():
    mc = make_controller()
    mc.partition_banks("a", [0])
    with pytest.raises(ValueError):
        mc.partition_banks("b", [0])
    mc.clear_partitions()
    mc.partition_banks("b", [0])  # fine after clearing


def test_activate_is_cheaper_than_access():
    mc = make_controller()
    act = mc.activate(bank_index=0, row=5, issued=0)
    mc2 = make_controller()
    acc = mc2.access(mc2.address_of(0, 5), issued=0)
    assert act.latency < acc.latency


def test_rowclone_mask_selects_banks():
    mc = make_controller()
    src = mc.address_of(bank=0, row=10)
    dst = mc.address_of(bank=0, row=20)
    mask = 0b1010
    results = mc.rowclone(src, dst, mask, issued=0)
    assert [r.bank for r in results] == [1, 3]
    assert mc.open_rows()[1] == 20
    assert mc.open_rows()[0] is None


def test_rowclone_empty_mask_is_noop():
    mc = make_controller()
    src = mc.address_of(bank=0, row=10)
    assert mc.rowclone(src, src, 0, issued=0) == []


def test_rowclone_banks_run_in_parallel():
    mc = make_controller()
    src = mc.address_of(bank=0, row=10)
    dst = mc.address_of(bank=0, row=20)
    all_banks = (1 << GEOM.num_banks) - 1
    results = mc.rowclone(src, dst, all_banks, issued=0)
    finishes = {r.finish for r in results}
    assert len(finishes) == 1  # all banks complete together


def test_rowclone_atomicity_locks_controller():
    """§5.1 threat model: no other DRAM operation until RowClone completes."""
    mc = make_controller()
    src = mc.address_of(bank=0, row=10)
    dst = mc.address_of(bank=0, row=20)
    results = mc.rowclone(src, dst, 0b1, issued=0)
    clone_finish = results[0].finish
    other = mc.access(mc.address_of(bank=7, row=0), issued=5)
    assert other.finish >= clone_finish


def test_rowclone_invalid_mask_rejected():
    mc = make_controller()
    src = mc.address_of(bank=0, row=10)
    with pytest.raises(ValueError):
        mc.rowclone(src, src, -1, issued=0)
    with pytest.raises(ValueError):
        mc.rowclone(src, src, 1 << GEOM.num_banks, issued=0)


def test_requestor_stats_tracked():
    mc = make_controller()
    addr = mc.address_of(bank=0, row=5)
    mc.access(addr, issued=0, requestor="alice")
    mc.access(addr, issued=1000, requestor="alice")
    mc.access(addr, issued=2000, requestor="bob", is_write=True)
    assert mc.requestor_stats["alice"].reads == 2
    assert mc.requestor_stats["alice"].hits == 1
    assert mc.requestor_stats["bob"].writes == 1


def test_refresh_noise_delays_accesses():
    mc = make_controller(refresh_enabled=True)
    t = mc.config.timings
    # An access issued right at the start of bank 0's refresh window waits.
    result = mc.access(mc.address_of(bank=0, row=0), issued=0)
    assert result.latency >= t.rfc_cycles


def test_negative_queue_cycles_rejected():
    with pytest.raises(ValueError):
        MemoryControllerConfig(queue_cycles=-1)
