"""Tests for the FCFS / FR-FCFS request scheduler."""

import pytest

from repro.dram import DRAMGeometry, DRAMTimings
from repro.dram.bank import AccessKind
from repro.dram.scheduling import (
    Request,
    RequestScheduler,
    SchedulingPolicy,
    requests_from_refs,
)

GEOM = DRAMGeometry(ranks=1, banks_per_rank=8, rows_per_bank=1024)
T = DRAMTimings()


def make_scheduler(policy=SchedulingPolicy.FRFCFS, window=16):
    return RequestScheduler(GEOM, T, policy=policy, window=window)


def test_single_request_latency():
    stats = make_scheduler().schedule([Request(arrival=0, bank=0, row=5)])
    assert stats.count == 1
    only = stats.scheduled[0]
    assert only.kind is AccessKind.EMPTY
    assert only.latency == T.empty_cycles


def test_same_row_requests_become_hits():
    requests = [Request(arrival=i * 10, bank=0, row=5) for i in range(4)]
    stats = make_scheduler().schedule(requests)
    kinds = [s.kind for s in stats.scheduled]
    assert kinds[0] is AccessKind.EMPTY
    assert all(k is AccessKind.HIT for k in kinds[1:])


def test_frfcfs_prioritizes_row_hits():
    """A young row-hit request jumps an older row-conflict request."""
    requests = [
        Request(arrival=0, bank=0, row=1),    # opens row 1
        Request(arrival=1, bank=0, row=2),    # conflict (older)
        Request(arrival=2, bank=0, row=1),    # hit (younger)
    ]
    stats = make_scheduler().schedule(requests)
    by_row = {s.request.row: s for s in stats.scheduled
              if s.request.arrival > 0}
    assert by_row[1].service_start < by_row[2].service_start
    assert by_row[1].kind is AccessKind.HIT


def test_fcfs_preserves_arrival_order():
    requests = [
        Request(arrival=0, bank=0, row=1),
        Request(arrival=1, bank=0, row=2),
        Request(arrival=2, bank=0, row=1),
    ]
    stats = make_scheduler(SchedulingPolicy.FCFS).schedule(requests)
    starts = [s.service_start for s in sorted(stats.scheduled,
                                              key=lambda s: s.request.arrival)]
    assert starts == sorted(starts)
    # Without reordering, the row-1 revisit is a conflict.
    last = max(stats.scheduled, key=lambda s: s.request.arrival)
    assert last.kind is AccessKind.CONFLICT


def test_frfcfs_beats_fcfs_on_interleaved_rows():
    """The FR-FCFS win: ping-ponging rows from two requestors schedule
    into row-hit runs."""
    requests = []
    for i in range(32):
        requests.append(Request(arrival=i * 8, bank=0, row=i % 2,
                                requestor=f"p{i % 2}"))
    frfcfs = make_scheduler(SchedulingPolicy.FRFCFS).schedule(requests)
    fcfs = make_scheduler(SchedulingPolicy.FCFS).schedule(requests)
    assert frfcfs.row_hit_rate > fcfs.row_hit_rate
    assert frfcfs.makespan < fcfs.makespan


def test_frfcfs_reordering_leaks_row_state():
    """The security flip side: a victim's open row changes how long the
    attacker's request queues — observable interference [77]."""
    base = [Request(arrival=0, bank=0, row=1, requestor="victim"),
            Request(arrival=1, bank=0, row=1, requestor="victim"),
            Request(arrival=2, bank=0, row=1, requestor="victim")]
    probe_same = base + [Request(arrival=3, bank=0, row=1,
                                 requestor="attacker")]
    probe_other = base + [Request(arrival=3, bank=0, row=9,
                                  requestor="attacker")]
    same = make_scheduler().schedule(probe_same).latency_of("attacker")
    other = make_scheduler().schedule(probe_other).latency_of("attacker")
    assert other > same  # latency reveals whether rows match


def test_banks_overlap_but_bus_serializes():
    requests = [Request(arrival=0, bank=b, row=0) for b in range(8)]
    stats = make_scheduler().schedule(requests)
    finishes = sorted(s.finish for s in stats.scheduled)
    # Bank operations overlap: total << 8 serial accesses...
    assert finishes[-1] < 8 * T.empty_cycles
    # ...but data bursts are spaced by the bus.
    for a, b in zip(finishes, finishes[1:]):
        assert b - a >= RequestScheduler.BUS_BURST_CYCLES


def test_window_bounds_reordering():
    """A row hit beyond the scheduling window cannot be promoted."""
    requests = [Request(arrival=0, bank=0, row=1)]
    requests += [Request(arrival=1 + i, bank=0, row=2 + i) for i in range(4)]
    requests.append(Request(arrival=10, bank=0, row=1))  # hit, far back
    narrow = RequestScheduler(GEOM, T, window=1).schedule(requests)
    wide = RequestScheduler(GEOM, T, window=16).schedule(requests)
    assert wide.row_hit_rate >= narrow.row_hit_rate


def test_requests_from_refs_conversion():
    from repro.dram import make_mapping
    from repro.workloads.kernels import MemoryRef
    refs = [MemoryRef(addr=i * 64, is_write=False, pc=0, compute_cycles=1)
            for i in range(10)]
    mapping = make_mapping("row", GEOM)
    requests = requests_from_refs(refs, GEOM, mapping, arrival_gap=5)
    assert len(requests) == 10
    assert requests[3].arrival == 15
    assert all(0 <= r.bank < GEOM.num_banks for r in requests)


def test_validation():
    with pytest.raises(ValueError):
        Request(arrival=-1, bank=0, row=0)
    with pytest.raises(ValueError):
        RequestScheduler(GEOM, T, window=0)
    with pytest.raises(ValueError):
        make_scheduler().schedule([Request(arrival=0, bank=99, row=0)])


def test_empty_trace():
    stats = make_scheduler().schedule([])
    assert stats.count == 0
    assert stats.mean_latency == 0.0
    assert stats.makespan == 0
