"""Unit tests for DRAM timing parameters and derived latencies."""

import pytest

from repro.dram import DRAMTimings


def test_paper_defaults_produce_sec31_gap():
    """§3.1: a row conflict costs ~74 CPU cycles more than a hit."""
    t = DRAMTimings()
    assert t.conflict_hit_gap_cycles == pytest.approx(70, abs=8)


def test_cycle_conversion_rounds():
    t = DRAMTimings(cpu_ghz=2.6)
    assert t.ns_to_cycles(13.5) == 35
    assert t.ns_to_cycles(100.0) == 260


def test_latency_ordering():
    t = DRAMTimings()
    assert t.hit_cycles < t.empty_cycles < t.conflict_cycles


def test_conflict_is_precharge_plus_empty():
    t = DRAMTimings()
    assert t.conflict_cycles == t.rp_cycles + t.empty_cycles


def test_rowclone_latency_exceeds_single_activation():
    t = DRAMTimings()
    assert t.rowclone_fpm_cycles > t.rcd_cycles


def test_row_timeout_disabled_by_default():
    assert DRAMTimings().row_timeout_cycles == 0


def test_row_timeout_configurable():
    t = DRAMTimings(row_timeout_ns=100.0)
    assert t.row_timeout_cycles == 260


@pytest.mark.parametrize("field,value", [
    ("cpu_ghz", 0), ("t_rcd_ns", -1), ("t_rp_ns", 0), ("t_cas_ns", 0),
    ("t_ras_ns", 0), ("t_refi_ns", 0), ("t_rfc_ns", 0), ("row_timeout_ns", -5),
])
def test_invalid_parameters_rejected(field, value):
    with pytest.raises(ValueError):
        DRAMTimings(**{field: value})
