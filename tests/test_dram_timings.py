"""Unit tests for DRAM timing parameters and derived latencies."""

import pytest

from repro.dram import DRAMTimings


def test_paper_defaults_produce_sec31_gap():
    """§3.1: a row conflict costs ~74 CPU cycles more than a hit."""
    t = DRAMTimings()
    assert t.conflict_hit_gap_cycles == pytest.approx(70, abs=8)


def test_cycle_conversion_rounds():
    t = DRAMTimings(cpu_ghz=2.6)
    assert t.ns_to_cycles(13.5) == 35
    assert t.ns_to_cycles(100.0) == 260


def test_latency_ordering():
    t = DRAMTimings()
    assert t.hit_cycles < t.empty_cycles < t.conflict_cycles


def test_conflict_is_precharge_plus_empty():
    t = DRAMTimings()
    assert t.conflict_cycles == t.rp_cycles + t.empty_cycles


@pytest.mark.parametrize("cpu_ghz", [1.0, 1.3, 2.4, 2.6, 3.0, 3.7, 4.25])
def test_latencies_compose_from_rounded_components(cpu_ghz):
    """Composite latencies must be sums of the *rounded* per-command
    figures — never round(ns sum) — so the CPU access path (which pays
    ``conflict_cycles`` whole) and the PiM activate path (which pays
    ``rp_cycles + rcd_cycles`` piecewise) can never disagree by a
    rounding cycle, at any CPU frequency."""
    t = DRAMTimings(cpu_ghz=cpu_ghz)
    assert t.empty_cycles == t.rcd_cycles + t.cas_cycles
    assert t.conflict_cycles == t.rp_cycles + t.rcd_cycles + t.cas_cycles
    assert t.conflict_hit_gap_cycles == t.rp_cycles + t.rcd_cycles


def test_sec31_gap_composition_at_paper_frequency():
    """The §3.1 ~74-cycle conflict-over-hit gap is exactly tRP + tRCD at
    the paper's 2.6 GHz (2 x 13.5 ns x 2.6 GHz = 70 cycles rounded)."""
    t = DRAMTimings()
    assert t.conflict_hit_gap_cycles == t.rp_cycles + t.rcd_cycles == 70


def test_rowclone_latency_exceeds_single_activation():
    t = DRAMTimings()
    assert t.rowclone_fpm_cycles > t.rcd_cycles


def test_row_timeout_disabled_by_default():
    assert DRAMTimings().row_timeout_cycles == 0


def test_row_timeout_configurable():
    t = DRAMTimings(row_timeout_ns=100.0)
    assert t.row_timeout_cycles == 260


@pytest.mark.parametrize("field,value", [
    ("cpu_ghz", 0), ("t_rcd_ns", -1), ("t_rp_ns", 0), ("t_cas_ns", 0),
    ("t_ras_ns", 0), ("t_refi_ns", 0), ("t_rfc_ns", 0), ("row_timeout_ns", -5),
])
def test_invalid_parameters_rejected(field, value):
    with pytest.raises(ValueError):
        DRAMTimings(**{field: value})
