"""Tests for the parallel sweep-execution subsystem (:mod:`repro.exp`)."""

import json
from pathlib import Path

import pytest

from repro.exp import (
    ResultCache,
    SweepPoint,
    code_version,
    default_jobs,
    metrics_path,
    point_slug,
    run_sweep,
    sweep_points,
)
from repro.exp.figures import fig8_sweep

CALLS = {"n": 0}


def counting_point(value):
    """Module-level (picklable) point that records how often it runs."""
    CALLS["n"] += 1
    return {"value": value, "double": value * 2}


def failing_point():
    raise RuntimeError("boom")


# ---------------------------------------------------------------------------
# Sweep points
# ---------------------------------------------------------------------------

class TestSweepPoint:
    def test_builder_varies_axis_and_fixes_common(self):
        points = sweep_points("exp", counting_point, "value", [1, 2, 3])
        assert [p.params["value"] for p in points] == [1, 2, 3]
        assert all(p.experiment == "exp" for p in points)
        assert points[0].label == "exp[value=1]"

    def test_run_invokes_fn_with_params(self):
        point = SweepPoint("exp", counting_point, params={"value": 21})
        assert point.run() == {"value": 21, "double": 42}

    def test_rejects_closures_and_lambdas(self):
        with pytest.raises(ValueError, match="module-level"):
            SweepPoint("exp", lambda: None)

        def local_fn():
            return None

        with pytest.raises(ValueError, match="module-level"):
            SweepPoint("exp", local_fn)

    def test_describe_without_label(self):
        point = SweepPoint("exp", counting_point, params={"value": 5})
        assert point.describe() == "exp(value=5)"


# ---------------------------------------------------------------------------
# Result cache
# ---------------------------------------------------------------------------

class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path, version="v1")
        assert ResultCache.is_missing(cache.get("exp", {"a": 1}))
        cache.put("exp", {"a": 1}, {"answer": 42})
        assert cache.get("exp", {"a": 1}) == {"answer": 42}
        assert cache.hits == 1 and cache.misses == 1

    def test_params_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path, version="v1")
        cache.put("exp", {"a": 1}, {"answer": 42})
        assert ResultCache.is_missing(cache.get("exp", {"a": 2}))
        assert ResultCache.is_missing(cache.get("other", {"a": 1}))

    def test_code_version_change_invalidates(self, tmp_path):
        """A different code version is a different key: editing the
        simulator must never serve stale figures."""
        ResultCache(tmp_path, version="v1").put("exp", {"a": 1}, {"r": 1})
        newer = ResultCache(tmp_path, version="v2")
        assert ResultCache.is_missing(newer.get("exp", {"a": 1}))

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, version="v1")
        cache.put("exp", {"a": 1}, {"r": 1})
        Path(cache.path_for("exp", {"a": 1})).write_text("not json{")
        assert ResultCache.is_missing(cache.get("exp", {"a": 1}))

    def test_entries_record_provenance(self, tmp_path):
        cache = ResultCache(tmp_path, version="v7")
        cache.put("exp", {"a": 1}, {"r": 1})
        raw = json.loads(Path(cache.path_for("exp", {"a": 1})).read_text())
        assert raw["experiment"] == "exp"
        assert raw["code_version"] == "v7"
        assert raw["params"] == {"a": 1}

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path, version="v1")
        cache.put("exp", {"a": 1}, {"r": 1})
        cache.clear()
        assert ResultCache.is_missing(cache.get("exp", {"a": 1}))

    def test_default_version_is_code_hash(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.version == code_version()
        assert len(code_version()) == 16
        int(code_version(), 16)  # hex digest prefix


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------

class TestRunSweep:
    def test_serial_jobs_1(self):
        points = sweep_points("exp", counting_point, "value", [1, 2, 3])
        outcome = run_sweep(points, jobs=1)
        assert outcome.results == [{"value": v, "double": 2 * v}
                                   for v in (1, 2, 3)]
        assert outcome.jobs == 1
        assert not outcome.parallel

    def test_outcome_is_sequence_like(self):
        points = sweep_points("exp", counting_point, "value", [4, 5])
        outcome = run_sweep(points, jobs=1)
        assert len(outcome) == 2
        assert outcome[1]["value"] == 5
        assert [p["value"] for p in outcome] == [4, 5]

    def test_cache_second_run_runs_nothing(self, tmp_path):
        cache = ResultCache(tmp_path, version="v1")
        points = sweep_points("exp", counting_point, "value", [1, 2])
        before = CALLS["n"]
        first = run_sweep(points, jobs=1, cache=cache)
        assert CALLS["n"] == before + 2
        assert first.cache_misses == 2 and first.cache_hits == 0
        second = run_sweep(points, jobs=1, cache=cache)
        assert CALLS["n"] == before + 2  # every point served from disk
        assert second.cache_hits == 2 and second.cache_misses == 0
        assert second.results == first.results

    def test_cache_respects_param_changes(self, tmp_path):
        cache = ResultCache(tmp_path, version="v1")
        run_sweep(sweep_points("exp", counting_point, "value", [1]),
                  jobs=1, cache=cache)
        before = CALLS["n"]
        outcome = run_sweep(sweep_points("exp", counting_point, "value", [9]),
                            jobs=1, cache=cache)
        assert CALLS["n"] == before + 1
        assert outcome.cache_misses == 1

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1

    def test_failing_point_propagates_serially(self):
        with pytest.raises(RuntimeError, match="boom"):
            run_sweep([SweepPoint("exp", failing_point)], jobs=1)


class TestMetricsDir:
    def test_point_slug_is_filesystem_safe(self):
        point = SweepPoint("exp", counting_point,
                           params={"value": 1}, label="fig8[llc_mb=8.0]")
        slug = point_slug(point)
        assert "/" not in slug and " " not in slug
        assert metrics_path("m", point).endswith(f"{slug}.metrics.json")

    def test_run_sweep_writes_per_point_metrics(self, tmp_path):
        points = sweep_points("exp", counting_point, "value", [1, 2])
        outcome = run_sweep(points, jobs=1, metrics_dir=str(tmp_path))
        assert len(outcome) == 2
        for point in points:
            data = json.loads(Path(metrics_path(str(tmp_path),
                                                point)).read_text())
            assert data["label"] == point.describe()
            # Every executed point is profiled, even a trivial one.
            assert data["phases"]["point"]["calls"] == 1

    def test_metrics_env_is_restored(self, tmp_path):
        import os
        assert "REPRO_METRICS_DIR" not in os.environ
        run_sweep(sweep_points("exp", counting_point, "value", [1]),
                  jobs=1, metrics_dir=str(tmp_path))
        assert "REPRO_METRICS_DIR" not in os.environ


class TestParallelEqualsSerial:
    """The acceptance criterion: fanning a sweep out across processes
    changes wall-clock time only, never the numbers."""

    def test_fig8_slice_parallel_equals_serial(self):
        points = fig8_sweep((8, 16))
        serial = run_sweep(points, jobs=1)
        parallel = run_sweep(points, jobs=2)
        # Bit-identical floats, not approximate equality.
        assert parallel.results == serial.results
        # Either real worker processes ran, or the environment forced the
        # (result-identical) serial fallback and said why.
        assert parallel.parallel or parallel.fallback_reason

    def test_parallel_results_preserve_point_order(self):
        points = sweep_points("exp", counting_point, "value",
                              [7, 3, 5, 1])
        outcome = run_sweep(points, jobs=4)
        assert [p["value"] for p in outcome] == [7, 3, 5, 1]
