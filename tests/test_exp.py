"""Tests for the parallel sweep-execution subsystem (:mod:`repro.exp`)."""

import json
from pathlib import Path

import pytest

from repro.exp import (
    ResultCache,
    SweepPoint,
    WorkerPool,
    code_version,
    default_jobs,
    metrics_path,
    point_slug,
    run_sweep,
    shutdown_pool,
    sweep_points,
)
from repro.exp.figures import fig8_sweep

CALLS = {"n": 0}


def counting_point(value):
    """Module-level (picklable) point that records how often it runs."""
    CALLS["n"] += 1
    return {"value": value, "double": value * 2}


def failing_point():
    raise RuntimeError("boom")


def pid_point(value):
    """Reports which process ran the point (pool-reuse assertions)."""
    import os

    return {"value": value, "pid": os.getpid()}


def warm_point(value):
    """Touches the warm store via Streamline's shared traversal order."""
    from repro.attacks.streamline import shared_order

    order = shared_order(20_000, value)
    return {"value": value, "first": order[0], "n": len(order)}


# ---------------------------------------------------------------------------
# Sweep points
# ---------------------------------------------------------------------------

class TestSweepPoint:
    def test_builder_varies_axis_and_fixes_common(self):
        points = sweep_points("exp", counting_point, "value", [1, 2, 3])
        assert [p.params["value"] for p in points] == [1, 2, 3]
        assert all(p.experiment == "exp" for p in points)
        assert points[0].label == "exp[value=1]"

    def test_run_invokes_fn_with_params(self):
        point = SweepPoint("exp", counting_point, params={"value": 21})
        assert point.run() == {"value": 21, "double": 42}

    def test_rejects_closures_and_lambdas(self):
        with pytest.raises(ValueError, match="module-level"):
            SweepPoint("exp", lambda: None)

        def local_fn():
            return None

        with pytest.raises(ValueError, match="module-level"):
            SweepPoint("exp", local_fn)

    def test_describe_without_label(self):
        point = SweepPoint("exp", counting_point, params={"value": 5})
        assert point.describe() == "exp(value=5)"


# ---------------------------------------------------------------------------
# Result cache
# ---------------------------------------------------------------------------

class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path, version="v1")
        assert ResultCache.is_missing(cache.get("exp", {"a": 1}))
        cache.put("exp", {"a": 1}, {"answer": 42})
        assert cache.get("exp", {"a": 1}) == {"answer": 42}
        assert cache.hits == 1 and cache.misses == 1

    def test_params_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path, version="v1")
        cache.put("exp", {"a": 1}, {"answer": 42})
        assert ResultCache.is_missing(cache.get("exp", {"a": 2}))
        assert ResultCache.is_missing(cache.get("other", {"a": 1}))

    def test_code_version_change_invalidates(self, tmp_path):
        """A different code version is a different key: editing the
        simulator must never serve stale figures."""
        ResultCache(tmp_path, version="v1").put("exp", {"a": 1}, {"r": 1})
        newer = ResultCache(tmp_path, version="v2")
        assert ResultCache.is_missing(newer.get("exp", {"a": 1}))

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, version="v1")
        cache.put("exp", {"a": 1}, {"r": 1})
        Path(cache.path_for("exp", {"a": 1})).write_text("not json{")
        assert ResultCache.is_missing(cache.get("exp", {"a": 1}))

    def test_entries_record_provenance(self, tmp_path):
        cache = ResultCache(tmp_path, version="v7")
        cache.put("exp", {"a": 1}, {"r": 1})
        raw = json.loads(Path(cache.path_for("exp", {"a": 1})).read_text())
        assert raw["experiment"] == "exp"
        assert raw["code_version"] == "v7"
        assert raw["params"] == {"a": 1}

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path, version="v1")
        cache.put("exp", {"a": 1}, {"r": 1})
        cache.clear()
        assert ResultCache.is_missing(cache.get("exp", {"a": 1}))

    def test_default_version_is_code_hash(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.version == code_version()
        assert len(code_version()) == 16
        int(code_version(), 16)  # hex digest prefix

    def test_eviction_caps_entry_count(self, tmp_path):
        cache = ResultCache(tmp_path, version="v1", max_entries=2)
        for i in range(5):
            cache.put("exp", {"a": i}, {"r": i})
        assert cache.entry_count() <= 2
        assert cache.evictions >= 3

    def test_eviction_prefers_stale_code_versions(self, tmp_path):
        """Entries from old code versions can never match a lookup again,
        so the LRU bound removes them before any live entry."""
        old = ResultCache(tmp_path, version="v1", max_entries=None)
        for i in range(3):
            old.put("exp", {"a": i}, {"r": i})
        new = ResultCache(tmp_path, version="v2", max_entries=4)
        for i in range(3):
            new.put("exp", {"b": i}, {"r": i})
        assert new.entry_count() == 4
        for i in range(3):  # every live entry survived the eviction
            assert new.get("exp", {"b": i}) == {"r": i}
        assert new.stats()["stale_entries"] == 1

    def test_prune_drops_only_stale_versions(self, tmp_path):
        ResultCache(tmp_path, version="v1",
                    max_entries=None).put("exp", {"a": 1}, {"r": 1})
        cache = ResultCache(tmp_path, version="v2", max_entries=None)
        cache.put("exp", {"b": 1}, {"r": 2})
        assert cache.prune() == 1
        assert cache.get("exp", {"b": 1}) == {"r": 2}
        stats = cache.stats()
        assert stats["entries"] == 1 and stats["stale_entries"] == 0


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------

class TestRunSweep:
    def test_serial_jobs_1(self):
        points = sweep_points("exp", counting_point, "value", [1, 2, 3])
        outcome = run_sweep(points, jobs=1)
        assert outcome.results == [{"value": v, "double": 2 * v}
                                   for v in (1, 2, 3)]
        assert outcome.jobs == 1
        assert not outcome.parallel

    def test_outcome_is_sequence_like(self):
        points = sweep_points("exp", counting_point, "value", [4, 5])
        outcome = run_sweep(points, jobs=1)
        assert len(outcome) == 2
        assert outcome[1]["value"] == 5
        assert [p["value"] for p in outcome] == [4, 5]

    def test_cache_second_run_runs_nothing(self, tmp_path):
        cache = ResultCache(tmp_path, version="v1")
        points = sweep_points("exp", counting_point, "value", [1, 2])
        before = CALLS["n"]
        first = run_sweep(points, jobs=1, cache=cache)
        assert CALLS["n"] == before + 2
        assert first.cache_misses == 2 and first.cache_hits == 0
        second = run_sweep(points, jobs=1, cache=cache)
        assert CALLS["n"] == before + 2  # every point served from disk
        assert second.cache_hits == 2 and second.cache_misses == 0
        assert second.results == first.results

    def test_cache_respects_param_changes(self, tmp_path):
        cache = ResultCache(tmp_path, version="v1")
        run_sweep(sweep_points("exp", counting_point, "value", [1]),
                  jobs=1, cache=cache)
        before = CALLS["n"]
        outcome = run_sweep(sweep_points("exp", counting_point, "value", [9]),
                            jobs=1, cache=cache)
        assert CALLS["n"] == before + 1
        assert outcome.cache_misses == 1

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1

    def test_default_jobs_honors_cpu_affinity(self, monkeypatch):
        """On interpreters without os.process_cpu_count, the affinity mask
        (cgroup/taskset-restricted CI) wins over the raw CPU count."""
        import os

        monkeypatch.delattr(os, "process_cpu_count", raising=False)
        monkeypatch.setattr(os, "sched_getaffinity",
                            lambda pid: {0, 1, 2}, raising=False)
        assert default_jobs() == 3

    def test_default_jobs_survives_affinity_failure(self, monkeypatch):
        import os

        def broken(pid):
            raise OSError("no affinity")

        monkeypatch.delattr(os, "process_cpu_count", raising=False)
        monkeypatch.setattr(os, "sched_getaffinity", broken, raising=False)
        assert default_jobs() >= 1

    def test_failing_point_propagates_serially(self):
        with pytest.raises(RuntimeError, match="boom"):
            run_sweep([SweepPoint("exp", failing_point)], jobs=1)

    def test_warm_counts_reported_in_outcome(self, tmp_path):
        from repro.exp import warmstore

        if not warmstore.enabled():
            pytest.skip("warm store disabled via REPRO_NO_WARMSTORE")
        points = sweep_points("exp", warm_point, "value", [11, 12])
        first = run_sweep(points, jobs=1, warm_dir=str(tmp_path))
        assert first.warm_misses > 0
        second = run_sweep(points, jobs=1, warm_dir=str(tmp_path))
        assert second.warm_hits > 0 and second.warm_misses == 0
        assert second.results == first.results

    def test_warm_dir_env_is_restored(self, tmp_path):
        import os

        assert "REPRO_WARMSTORE_DIR" not in os.environ
        run_sweep(sweep_points("exp", counting_point, "value", [1]),
                  jobs=1, warm_dir=str(tmp_path))
        assert "REPRO_WARMSTORE_DIR" not in os.environ


class TestMetricsDir:
    def test_point_slug_is_filesystem_safe(self):
        point = SweepPoint("exp", counting_point,
                           params={"value": 1}, label="fig8[llc_mb=8.0]")
        slug = point_slug(point)
        assert "/" not in slug and " " not in slug
        assert metrics_path("m", point).endswith(f"{slug}.metrics.json")

    def test_run_sweep_writes_per_point_metrics(self, tmp_path):
        points = sweep_points("exp", counting_point, "value", [1, 2])
        outcome = run_sweep(points, jobs=1, metrics_dir=str(tmp_path))
        assert len(outcome) == 2
        for point in points:
            data = json.loads(Path(metrics_path(str(tmp_path),
                                                point)).read_text())
            assert data["label"] == point.describe()
            # Every executed point is profiled, even a trivial one.
            assert data["phases"]["point"]["calls"] == 1

    def test_metrics_env_is_restored(self, tmp_path):
        import os
        assert "REPRO_METRICS_DIR" not in os.environ
        run_sweep(sweep_points("exp", counting_point, "value", [1]),
                  jobs=1, metrics_dir=str(tmp_path))
        assert "REPRO_METRICS_DIR" not in os.environ


class TestParallelEqualsSerial:
    """The acceptance criterion: fanning a sweep out across processes
    changes wall-clock time only, never the numbers."""

    def test_fig8_slice_parallel_equals_serial(self):
        points = fig8_sweep((8, 16))
        serial = run_sweep(points, jobs=1)
        parallel = run_sweep(points, jobs=2)
        # Bit-identical floats, not approximate equality.
        assert parallel.results == serial.results
        # Either real worker processes ran, or the environment forced the
        # (result-identical) serial fallback and said why.
        assert parallel.parallel or parallel.fallback_reason

    def test_parallel_results_preserve_point_order(self):
        points = sweep_points("exp", counting_point, "value",
                              [7, 3, 5, 1])
        outcome = run_sweep(points, jobs=4)
        assert [p["value"] for p in outcome] == [7, 3, 5, 1]


# ---------------------------------------------------------------------------
# Fork-server worker pool
# ---------------------------------------------------------------------------

def _pool_or_skip():
    pool = WorkerPool()
    try:
        pool.ensure(1)
    except (OSError, PermissionError, RuntimeError, ImportError) as exc:
        pool.shutdown()
        pytest.skip(f"worker processes unavailable: {exc}")
    return pool


class TestWorkerPool:
    def test_workers_persist_across_runs(self):
        """The fork-server property: a second sweep reuses the same
        worker processes (and therefore their in-memory warm state)."""
        pool = _pool_or_skip()
        try:
            first = pool.run(sweep_points("exp", pid_point, "value",
                                          [1, 2, 3]), jobs=2)
            second = pool.run(sweep_points("exp", pid_point, "value",
                                           [4, 5, 6]), jobs=2)
            first_pids = {payload["pid"] for payload, _delta in first}
            second_pids = {payload["pid"] for payload, _delta in second}
            assert second_pids <= first_pids
            assert len(pool) == 2
        finally:
            pool.shutdown()

    def test_run_returns_payloads_with_warm_deltas(self):
        pool = _pool_or_skip()
        try:
            pairs = pool.run(sweep_points("exp", counting_point, "value",
                                          [9, 10]), jobs=2)
            assert [payload["value"] for payload, _delta in pairs] == [9, 10]
            for _payload, delta in pairs:
                assert set(delta) == {"hits", "misses"}
        finally:
            pool.shutdown()

    def test_pool_stays_usable_after_point_failure(self):
        pool = _pool_or_skip()
        try:
            with pytest.raises(RuntimeError, match="boom"):
                pool.run([SweepPoint("exp", failing_point),
                          SweepPoint("exp", counting_point,
                                     params={"value": 1})], jobs=2)
            pairs = pool.run(sweep_points("exp", counting_point, "value",
                                          [2]), jobs=2)
            assert pairs[0][0] == {"value": 2, "double": 4}
        finally:
            pool.shutdown()

    def test_shutdown_pool_is_idempotent(self):
        shutdown_pool()
        shutdown_pool()

# ---------------------------------------------------------------------------
# Commit-as-you-go: completed results survive a failing sibling point
# ---------------------------------------------------------------------------

def logged_point(value, log):
    """Appends its value to ``log`` — counts executions across processes."""
    with open(log, "a") as fh:
        fh.write(f"{value}\n")
    return {"value": value}


def logged_fail_on_two(value, log):
    with open(log, "a") as fh:
        fh.write(f"{value}\n")
    if value == 2:
        raise RuntimeError("point two failed")
    return {"value": value}


def _log_counts(log):
    text = Path(log).read_text() if Path(log).exists() else ""
    counts = {}
    for line in text.splitlines():
        counts[line] = counts.get(line, 0) + 1
    return counts


class TestCommitOnFailure:
    """A failing point must not discard its siblings' finished work: every
    completed payload is committed to the result cache before the sweep
    re-raises, so a retry never redoes completed points."""

    def test_serial_failure_commits_completed_results(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", version="v1")
        log = str(tmp_path / "runs.log")
        points = [SweepPoint("exp", logged_fail_on_two,
                             {"value": v, "log": log}) for v in (1, 2)]
        with pytest.raises(RuntimeError, match="point two failed"):
            run_sweep(points, jobs=1, cache=cache)
        assert cache.get("exp", {"value": 1, "log": log}) == {"value": 1}
        with pytest.raises(RuntimeError, match="point two failed"):
            run_sweep(points, jobs=1, cache=cache)
        # The completed point ran exactly once across both attempts.
        assert _log_counts(log)["1"] == 1

    def test_parallel_failure_commits_completed_results(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", version="v1")
        log = str(tmp_path / "runs.log")
        points = [SweepPoint("exp", logged_fail_on_two,
                             {"value": v, "log": log}) for v in (1, 2, 3)]
        with pytest.raises(RuntimeError, match="point two failed"):
            run_sweep(points, jobs=2, cache=cache)
        # Whatever completed before the failure propagated is cached ...
        committed = [v for v in (1, 3) if not ResultCache.is_missing(
            cache.get("exp", {"value": v, "log": log}))]
        assert committed, "no completed sibling was committed"
        with pytest.raises(RuntimeError, match="point two failed"):
            run_sweep(points, jobs=2, cache=cache)
        counts = _log_counts(log)
        # ... and never re-executed on the retry.
        for value in committed:
            assert counts[str(value)] == 1

    def test_pool_run_on_result_fires_before_raise(self):
        pool = _pool_or_skip()
        seen = []
        try:
            with pytest.raises(RuntimeError, match="boom"):
                pool.run([SweepPoint("exp", counting_point,
                                     params={"value": 7}),
                          SweepPoint("exp", failing_point)], jobs=2,
                         on_result=lambda i, payload, delta:
                             seen.append((i, payload)))
            assert (0, {"value": 7, "double": 14}) in seen
        finally:
            pool.shutdown()


# ---------------------------------------------------------------------------
# Pool shrink / lease lifecycle
# ---------------------------------------------------------------------------

class TestPoolShrink:
    def test_shrink_retires_idle_workers(self):
        pool = _pool_or_skip()
        try:
            pool.ensure(3)
            assert len(pool) == 3
            assert pool.shrink(1) == 2
            assert len(pool) == 1
            # The survivor still works.
            pairs = pool.run([SweepPoint("exp", counting_point,
                                         params={"value": 5})], jobs=1)
            assert pairs[0][0] == {"value": 5, "double": 10}
        finally:
            pool.shutdown()

    def test_shrink_spares_leased_workers(self):
        pool = _pool_or_skip()
        try:
            pool.ensure(2)
            handle = pool.checkout()
            assert pool.shrink(0) == 1  # only the idle worker goes
            assert len(pool) == 1 and handle.leased
            pool.checkin(handle)
            assert pool.shrink(0) == 1
            assert len(pool) == 0
        finally:
            pool.shutdown()

    def test_run_trims_pool_to_requested_jobs(self):
        """`ensure` used to only grow; a narrow sweep after a wide one now
        releases the extra workers instead of pinning the high-water mark."""
        pool = _pool_or_skip()
        try:
            pool.ensure(3)
            pool.run([SweepPoint("exp", counting_point,
                                 params={"value": 1})], jobs=1)
            assert len(pool) == 1
        finally:
            pool.shutdown()

    def test_checkout_checkin_cycle(self):
        pool = _pool_or_skip()
        try:
            first = pool.checkout()
            assert first.leased
            assert pool.checkout(spawn=False) is None  # all busy
            pool.checkin(first)
            assert pool.checkout(spawn=False) is first  # reused, not respawned
            pool.retire(first)
            assert len(pool) == 0
        finally:
            pool.shutdown()


# ---------------------------------------------------------------------------
# Monotonic LRU (clock-step immunity)
# ---------------------------------------------------------------------------

class TestResultCacheMonotonicLRU:
    def test_eviction_ignores_wall_clock(self, tmp_path):
        """A clock step (NTP, VM resume) must not reorder eviction: the
        entry touched most recently by *operation order* survives even
        when a stale entry's mtime claims it is from the far future."""
        cache = ResultCache(tmp_path, version="v1", max_entries=None)
        cache.put("exp", {"a": 1}, {"r": 1})
        cache.put("exp", {"a": 2}, {"r": 2})
        assert cache.get("exp", {"a": 1}) == {"r": 1}  # a=1 is now MRU
        # Forge a future mtime on the LRU entry: under mtime recency it
        # would wrongly look freshest.
        import time as _time
        future = _time.time() + 1e6
        os_path = cache.path_for("exp", {"a": 2})
        import os as _os
        _os.utime(os_path, (future, future))
        bounded = ResultCache(tmp_path, version="v1", max_entries=2)
        bounded.put("exp", {"a": 3}, {"r": 3})
        assert bounded.get("exp", {"a": 1}) == {"r": 1}
        assert ResultCache.is_missing(bounded.get("exp", {"a": 2}))

    def test_index_sidecar_is_not_an_entry(self, tmp_path):
        cache = ResultCache(tmp_path, version="v1")
        cache.put("exp", {"a": 1}, {"r": 1})
        assert cache.entry_count() == 1
        assert (Path(tmp_path) / ResultCache.INDEX_NAME).exists()

    def test_corrupt_index_degrades_gracefully(self, tmp_path):
        cache = ResultCache(tmp_path, version="v1", max_entries=2)
        cache.put("exp", {"a": 1}, {"r": 1})
        (Path(tmp_path) / ResultCache.INDEX_NAME).write_text("not json")
        assert cache.get("exp", {"a": 1}) == {"r": 1}
        for i in range(2, 5):
            cache.put("exp", {"a": i}, {"r": i})
        assert cache.entry_count() <= 2

    def test_clear_removes_index(self, tmp_path):
        cache = ResultCache(tmp_path, version="v1")
        cache.put("exp", {"a": 1}, {"r": 1})
        cache.clear()
        assert not (Path(tmp_path) / ResultCache.INDEX_NAME).exists()
        assert cache.entry_count() == 0
