"""Tests for the adaptive sweep engine (:mod:`repro.exp.adaptive`), the
:class:`ExecutionBackend` seam, straggler re-dispatch, and the retry
budget shared by every re-execution reason."""

import os
import socket

import pytest

from repro.analysis.quality import relative_spread, wilson_halfwidth
from repro.exp import (
    AdaptiveConfig,
    ConvergenceTarget,
    PoolBackend,
    ResultCache,
    SerialBackend,
    ServeBackend,
    StragglerPolicy,
    SweepPoint,
    WorkerPool,
    bernoulli_probe_point,
    resolve_backend,
    run_adaptive_sweep,
    run_sweep,
    shutdown_pool,
)
from repro.exp import runner as runner_mod
from repro.exp.adaptive import extract_streams
from repro.exp.runner import PoolUnavailableError
from repro.obs import telemetry
from repro.obs import top as obs_top


def probe(p, bits, **extra):
    return SweepPoint("bernoulli", bernoulli_probe_point,
                      {"p": p, "bits": bits, **extra})


def value_point(value):
    """Module-level (picklable) trivial point."""
    return {"value": value, "double": value * 2}


# ---------------------------------------------------------------------------
# Convergence predicates on synthetic streams
# ---------------------------------------------------------------------------

class TestConvergenceMath:
    @pytest.mark.parametrize("rate", [0.0, 0.1, 0.5])
    def test_wilson_halfwidth_monotone_in_trials(self, rate):
        """More trials at the same empirical rate can only tighten the
        interval — the property the early-stop predicate relies on."""
        widths = [wilson_halfwidth(int(rate * n), n)
                  for n in (20, 80, 320, 1280, 5120)]
        assert all(a > b for a, b in zip(widths, widths[1:]))
        assert all(0.0 < w < 1.0 for w in widths)

    def test_wilson_halfwidth_matches_interval(self):
        from repro.analysis.quality import wilson_interval

        lo, hi = wilson_interval(3, 100)
        assert wilson_halfwidth(3, 100) == pytest.approx((hi - lo) / 2)

    def test_relative_spread(self):
        assert relative_spread([]) is None
        assert relative_spread([1.0]) is None
        assert relative_spread([2.0, 2.0, 2.0]) == 0.0
        assert relative_spread([1.0, 2.0]) == pytest.approx(2.0 / 3.0)

    def test_extract_streams_flat_and_fig8_shapes(self):
        assert extract_streams({"errors": 3, "bits": 100}) == {"": (3, 100)}
        fig8 = {"attacks": {"IMPACT-PnM": {"errors": 1, "bits": 64},
                            "Streamline-bound": {"capacity": 2.0}}}
        assert extract_streams(fig8) == {"IMPACT-PnM": (1, 64)}
        assert extract_streams(None) == {}


# ---------------------------------------------------------------------------
# The adaptive engine (serial backend: deterministic and fast)
# ---------------------------------------------------------------------------

class TestAdaptiveEngine:
    def test_early_stop_never_before_min_rep_floor(self):
        """A point whose very first rep would satisfy the CI target must
        still run the full ``min_reps`` floor."""
        config = AdaptiveConfig(min_reps=3, max_reps=6, round_reps=1,
                                target=ConvergenceTarget(
                                    ber_ci_halfwidth=0.2))
        outcome = run_adaptive_sweep([probe(0.0, 5000)], config=config,
                                     jobs=1, backend="serial")
        (result,) = outcome.results
        assert result.converged
        assert result.reps == 3
        assert result.halfwidth < 0.01  # far past target: floor held it

    def test_hard_point_escalates_to_max_reps(self):
        config = AdaptiveConfig(min_reps=2, max_reps=5, round_reps=2,
                                target=ConvergenceTarget(
                                    ber_ci_halfwidth=0.001))
        outcome = run_adaptive_sweep([probe(0.5, 20)], config=config,
                                     jobs=1, backend="serial")
        (result,) = outcome.results
        assert not result.converged
        assert result.reps == config.max_reps
        assert outcome.executed_reps == config.max_reps

    def test_disabled_target_degenerates_to_fixed_grid(self):
        config = AdaptiveConfig(min_reps=1, max_reps=4, round_reps=2,
                                target=ConvergenceTarget(
                                    ber_ci_halfwidth=None))
        outcome = run_adaptive_sweep([probe(0.1, 64)], config=config,
                                     jobs=1, backend="serial")
        assert outcome.executed_reps == 4
        assert outcome.rep_savings_ratio == 1.0

    def test_merged_adaptive_bit_identical_to_fixed_grid(self):
        """Seeded reps pool to exactly the fixed grid's statistics: the
        adaptive run's payloads are the fixed grid's payloads, rep for
        rep, and the pooled errors are their plain sum."""
        config = AdaptiveConfig(min_reps=2, max_reps=4, round_reps=1,
                                target=ConvergenceTarget(
                                    ber_ci_halfwidth=None))
        declared = probe(0.2, 128)
        adaptive = run_adaptive_sweep([declared], config=config, jobs=1,
                                      backend="serial")
        (result,) = adaptive.results
        fixed_points = [declared.with_params(seed=config.value_for(rep))
                        for rep in range(config.max_reps)]
        fixed = run_sweep(fixed_points, jobs=1, backend="serial")
        assert result.payloads == list(fixed.results)
        pooled = result.pooled_streams()[""]
        assert pooled["errors"] == sum(p["errors"] for p in fixed.results)
        assert pooled["trials"] == sum(p["bits"] for p in fixed.results)

    def test_converged_run_is_a_prefix_of_the_fixed_grid(self):
        config = AdaptiveConfig(min_reps=2, max_reps=6, round_reps=2,
                                target=ConvergenceTarget(
                                    ber_ci_halfwidth=0.05))
        declared = probe(0.0, 1000)
        outcome = run_adaptive_sweep([declared], config=config, jobs=1,
                                     backend="serial")
        (result,) = outcome.results
        assert result.converged and result.reps < config.max_reps
        fixed_points = [declared.with_params(seed=config.value_for(rep))
                        for rep in range(config.max_reps)]
        fixed = run_sweep(fixed_points, jobs=1, backend="serial")
        assert result.payloads == list(fixed.results)[:result.reps]

    def test_rep_values_override_the_axis(self):
        config = AdaptiveConfig(min_reps=2, max_reps=2, round_reps=1,
                                rep_values=(11, 13))
        outcome = run_adaptive_sweep([probe(0.1, 64)], config=config,
                                     jobs=1, backend="serial")
        (result,) = outcome.results
        assert [p["seed"] for p in result.payloads] == [11, 13]
        assert result.rep_values == [11, 13]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdaptiveConfig(min_reps=0)
        with pytest.raises(ValueError):
            AdaptiveConfig(min_reps=3, max_reps=2)
        with pytest.raises(ValueError):
            AdaptiveConfig(max_reps=4, rep_values=(1, 2))

    def test_savings_accounting(self):
        config = AdaptiveConfig(min_reps=2, max_reps=8, round_reps=2,
                                target=ConvergenceTarget(
                                    ber_ci_halfwidth=0.05))
        outcome = run_adaptive_sweep([probe(0.0, 2000)], config=config,
                                     jobs=1, backend="serial")
        assert outcome.fixed_reps == 8
        assert outcome.executed_reps == 2
        assert outcome.rep_savings_ratio == pytest.approx(4.0)


# ---------------------------------------------------------------------------
# Backend resolution and the serve fallback
# ---------------------------------------------------------------------------

class TestBackendResolution:
    def test_auto_picks_pool_only_when_it_helps(self):
        assert isinstance(resolve_backend("auto", jobs=4, pending=4),
                          PoolBackend)
        assert isinstance(resolve_backend("auto", jobs=4, pending=1),
                          SerialBackend)
        assert isinstance(resolve_backend("auto", jobs=1, pending=4),
                          SerialBackend)
        assert isinstance(resolve_backend(None, jobs=1, pending=0),
                          SerialBackend)

    def test_explicit_names(self):
        assert isinstance(resolve_backend("serial", jobs=8, pending=8),
                          SerialBackend)
        pool = resolve_backend("pool", jobs=1, pending=1,
                               straggler=StragglerPolicy())
        assert isinstance(pool, PoolBackend)
        serve = resolve_backend("serve", jobs=1, pending=1,
                                serve_addr=("example.test", 1234))
        assert isinstance(serve, ServeBackend)
        assert (serve.host, serve.port) == ("example.test", 1234)

    def test_instance_passes_through(self):
        backend = SerialBackend()
        assert resolve_backend(backend, jobs=4, pending=4) is backend

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            resolve_backend("quantum", jobs=1, pending=1)


class TestServeFallback:
    def test_unreachable_daemon_falls_back_to_serial(self):
        # Grab a port with no listener behind it.
        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            port = sock.getsockname()[1]
        points = [probe(0.1, 64, seed=s) for s in (1, 2)]
        outcome = run_sweep(points, jobs=1, backend="serve",
                            serve_addr=("127.0.0.1", port))
        assert outcome.fallback_reason
        assert [p["seed"] for p in outcome.results] == [1, 2]


# ---------------------------------------------------------------------------
# The shared per-point retry budget
# ---------------------------------------------------------------------------

class TestRetryBudget:
    def test_exhausted_budget_fails_instead_of_looping(self, monkeypatch):
        def explode(*args, **kwargs):
            raise PoolUnavailableError("injected")

        monkeypatch.setattr(runner_mod, "_run_parallel", explode)
        with pytest.raises(RuntimeError, match="retry budget exhausted"):
            run_sweep([SweepPoint("exp", value_point, {"value": v})
                       for v in (1, 2)],
                      jobs=2, backend="pool", max_point_retries=0)

    def test_budget_of_one_allows_the_serial_fallback(self, monkeypatch):
        def explode(*args, **kwargs):
            raise PoolUnavailableError("injected")

        monkeypatch.setattr(runner_mod, "_run_parallel", explode)
        outcome = run_sweep([SweepPoint("exp", value_point, {"value": v})
                             for v in (1, 2)],
                            jobs=2, backend="pool", max_point_retries=1)
        assert [p["value"] for p in outcome.results] == [1, 2]
        assert outcome.fallback_reason


# ---------------------------------------------------------------------------
# Straggler re-dispatch on the real pool
# ---------------------------------------------------------------------------

def _pool_or_skip():
    pool = WorkerPool()
    try:
        pool.ensure(1)
    except (OSError, PermissionError, RuntimeError, ImportError) as exc:
        pool.shutdown()
        pytest.skip(f"worker processes unavailable: {exc}")
    return pool


class TestStragglerRedispatch:
    def test_twin_rescues_injected_straggler(self, tmp_path, monkeypatch):
        _pool_or_skip().shutdown()
        shutdown_pool()
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(tmp_path / "tele"))
        sentinel = str(tmp_path / "slow-once")
        points = [probe(0.1, 128, seed=99, slow_sentinel=sentinel,
                        slow_seconds=2.0, fast_seconds=0.02)]
        points += [probe(0.1, 128, seed=s, fast_seconds=0.02)
                   for s in range(1, 6)]
        try:
            outcome = run_sweep(
                points, jobs=2, backend="pool",
                telemetry_dir=str(tmp_path / "tele"),
                straggler=StragglerPolicy(factor=3.0, min_seconds=0.1,
                                          min_samples=3))
        finally:
            shutdown_pool()
        assert outcome.redispatches >= 1
        assert outcome.elapsed_seconds < 1.8  # did not wait out the sleeper
        # Payloads are deterministic regardless of which copy won.
        assert [p["seed"] for p in outcome.results] == [99, 1, 2, 3, 4, 5]

        events = telemetry.read_events(str(tmp_path / "tele"))
        assert not telemetry.verify_chains(events)
        commits = {}
        for event in events:
            if event.get("event") == "point_committed":
                span = event["span_id"]
                commits[span] = commits.get(span, 0) + 1
        assert len(commits) == len(points)
        assert all(count == 1 for count in commits.values())
        reasons = [e.get("reason") for e in events
                   if e.get("event") == "point_retried"]
        assert "straggler_redispatch" in reasons

    def test_policy_poll_interval_is_bounded(self):
        assert StragglerPolicy(min_seconds=100.0).poll_seconds() == 0.5
        assert StragglerPolicy(min_seconds=0.01).poll_seconds() == 0.02


# ---------------------------------------------------------------------------
# `repro top` renders re-dispatch
# ---------------------------------------------------------------------------

class TestTopRedispatch:
    def test_fleet_state_tracks_twins_offline(self):
        events = [
            {"event": "point_queued", "span_id": "s1", "point_slug": "a",
             "ts": 0.1},
            {"event": "point_dispatched", "span_id": "s1",
             "point_slug": "a", "worker_pid": 7, "ts": 0.2},
            {"event": "point_straggler", "span_id": "s1", "ts": 1.0},
            {"event": "point_retried", "span_id": "s1",
             "reason": "straggler_redispatch", "ts": 1.0},
            {"event": "point_dispatched", "span_id": "s1",
             "point_slug": "a", "worker_pid": 8, "redispatch": True,
             "ts": 1.1},
        ]
        state = obs_top.fleet_state(events, now=1.5)
        (flight,) = state["in_flight"]
        assert flight["has_twin"] is True
        assert flight["worker_pid"] == 7  # primary kept, twin credited
        assert state["workers"]["8"]["redispatched"] == 1
        frame = obs_top.render_state_frame(state, source="unit")
        assert "redispatched" in frame
        assert "STRAGGLER R" in frame

    def test_metrics_frame_shows_redispatch_columns(self):
        payload = {"stats": {
            "max_jobs": 2, "queued_points": 0, "running_points": 2,
            "jobs_total": 1, "jobs_done": 0, "pool_workers": 2,
            "counters": {},
            "workers": {
                "completed_points": 4, "median_point_seconds": 0.1,
                "straggler_threshold_seconds": 1.0, "stragglers_total": 1,
                "workers": {
                    "41": {"points": 4, "busy_seconds": 0.4,
                           "points_per_sec": 10.0, "lease_age_s": 2.0,
                           "in_flight": "slowpoint", "straggler": True,
                           "redispatched": 0},
                    "42": {"points": 0, "busy_seconds": 0.0,
                           "points_per_sec": None, "lease_age_s": 0.1,
                           "in_flight": "slowpoint", "straggler": False,
                           "redispatched": 1}},
                "in_flight": [
                    {"span_id": "s1", "worker_pid": 41,
                     "point_slug": "slowpoint", "age_s": 2.0,
                     "straggler": True, "has_twin": True},
                    {"span_id": "s1#r1", "worker_pid": 42,
                     "point_slug": "slowpoint", "age_s": 0.1,
                     "straggler": False, "twin": True}]}}}
        frame = obs_top.render_metrics_frame(payload, source="test")
        assert "redispatched" in frame
        assert "STRAGGLER R" in frame  # the flagged primary
        lines = [line for line in frame.splitlines() if "42" in line]
        assert any(line.rstrip().endswith("R") for line in lines)
