"""Tests for the persistent warm-state store (:mod:`repro.exp.warmstore`).

The load-bearing property is the PR's hard invariant: a point served from
warm state — memory memo, pristine pool, or on-disk snapshot — must be
**bit-identical** to the same point rebuilt from scratch
(``REPRO_NO_WARMSTORE=1``).
"""

import random

import pytest

from repro.config import SystemConfig
from repro.exp import warmstore
from repro.exp.warmstore import (
    WarmStore,
    clear_pristine_pool,
    pristine_system,
    reset_active_store,
)
from repro.system import System
from repro.workloads.kernels import workload_spec
from repro.workloads.runner import WarmupCache, fig11_config, run_multiprogrammed


def _drive(system, count, seed_stride=7, start=0):
    """Deterministic access stream; returns (latency, hit_level) trace."""
    now = start
    trace = []
    for i in range(count):
        result = system.hierarchy.access(
            i % system.config.num_cores, (i * 64 * seed_stride) % (1 << 22),
            now, pc=i % 53)
        trace.append((result.latency, result.hit_level))
        now = result.finish
    return trace, now


def _clear_memos():
    """Reset every in-process warm memo, so later reuse must come from the
    on-disk store (what a fresh worker process would see)."""
    from repro.attacks import streamline
    from repro.exp import figures

    streamline._ORDER_MEMO.clear()
    figures._FIG10_SCHEDULES.clear()
    figures._FIG11_WARM = None
    clear_pristine_pool()
    reset_active_store()


@pytest.fixture(autouse=True)
def _isolated_store_state():
    """Each test resolves the store from its own environment and leaves no
    pooled systems behind."""
    reset_active_store()
    clear_pristine_pool()
    yield
    reset_active_store()
    clear_pristine_pool()


# ---------------------------------------------------------------------------
# WarmStore entries
# ---------------------------------------------------------------------------

class TestWarmStore:
    def test_artifact_roundtrip(self, tmp_path):
        store = WarmStore(tmp_path, version="v1")
        recipe = ("order", 128, 7)
        assert store.is_missing(store.load_artifact(recipe))
        store.store_artifact(recipe, [3, 1, 2])
        assert store.load_artifact(recipe) == [3, 1, 2]
        assert store.hits == 1 and store.misses == 1

    def test_artifact_disk_roundtrip_without_memory(self, tmp_path):
        writer = WarmStore(tmp_path, version="v1")
        writer.store_artifact(("r",), {"a": 1})
        reader = WarmStore(tmp_path, version="v1")  # fresh LRU
        assert reader.load_artifact(("r",)) == {"a": 1}
        assert reader.disk_hits == 1

    def test_snapshot_roundtrip_validates_config(self, tmp_path):
        config = fig11_config()
        system = System(config)
        _drive(system, 500)
        snap = system.snapshot()
        store = WarmStore(tmp_path, version="v1")
        store.store_snapshot(snap, recipe=("warmup", "x"))
        loaded = WarmStore(tmp_path, version="v1").load_snapshot(
            config, ("warmup", "x"))
        assert loaded is not None and loaded.config == config
        restored = System(config)
        restored.restore(loaded)
        tail_restored, _ = _drive(restored, 300, seed_stride=13, start=10_000)
        tail_original, _ = _drive(system, 300, seed_stride=13, start=10_000)
        assert tail_restored == tail_original

    def test_snapshot_other_config_is_miss(self, tmp_path):
        config = fig11_config()
        store = WarmStore(tmp_path, version="v1")
        store.store_snapshot(System(config).snapshot(), recipe=("w",))
        other = config.with_defense("crp")
        assert store.load_snapshot(other, ("w",)) is None

    def test_version_change_invalidates_and_prune_removes(self, tmp_path):
        old = WarmStore(tmp_path, version="v1")
        old.store_artifact(("r",), [1])
        new = WarmStore(tmp_path, version="v2")
        assert new.is_missing(new.load_artifact(("r",)))
        assert new.stats()["stale_entries"] == 1
        assert new.prune() == 1
        assert new.stats()["entries"] == 0
        # Same-version entries survive a prune.
        new.store_artifact(("r",), [2])
        assert new.prune() == 0
        assert new.load_artifact(("r",)) == [2]

    def test_corrupt_snapshot_file_is_clean_miss(self, tmp_path):
        config = fig11_config()
        store = WarmStore(tmp_path, version="v1")
        path = store.store_snapshot(System(config).snapshot(), recipe=("w",))
        reset = WarmStore(tmp_path, version="v1")
        with open(path, "wb") as handle:
            handle.write(b"not a snapshot")
        assert reset.load_snapshot(config, ("w",)) is None

    def test_memory_lru_is_bounded(self, tmp_path):
        store = WarmStore(tmp_path, version="v1", memory_entries=2)
        for i in range(5):
            store.store_artifact(("r", i), [i])
        assert len(store._memory) == 2
        # Evicted entries still load from disk.
        assert store.load_artifact(("r", 0)) == [0]

    def test_clear_removes_everything(self, tmp_path):
        store = WarmStore(tmp_path, version="v1")
        store.store_artifact(("a",), 1)
        store.store_artifact(("b",), 2)
        assert store.clear() == 2
        assert store.is_missing(store.load_artifact(("a",)))


# ---------------------------------------------------------------------------
# Process-global discovery and the kill switch
# ---------------------------------------------------------------------------

class TestDiscovery:
    def test_current_resolves_env_dir(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_WARMSTORE_DIR", raising=False)
        assert warmstore.current() is None
        monkeypatch.setenv("REPRO_WARMSTORE_DIR", str(tmp_path))
        store = warmstore.current()
        assert store is not None and store.directory == str(tmp_path)
        assert warmstore.current() is store  # memoized instance

    def test_kill_switch_disables_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_WARMSTORE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_NO_WARMSTORE", "1")
        assert not warmstore.enabled()
        assert warmstore.current() is None

    def test_record_event_mirrors_into_metrics(self):
        from repro.obs import metrics as obs_metrics

        registry = obs_metrics.install(obs_metrics.MetricsRegistry())
        try:
            before = warmstore.counters()
            warmstore.record_event("hits", 2)
            warmstore.record_event("misses")
            after = warmstore.counters()
            assert after["hits"] - before["hits"] == 2
            assert after["misses"] - before["misses"] == 1
            assert registry.counter("warmstore.hits").value == 2
            assert registry.counter("warmstore.misses").value == 1
        finally:
            obs_metrics.uninstall()


# ---------------------------------------------------------------------------
# Pristine-system pool
# ---------------------------------------------------------------------------

class TestPristineSystem:
    def test_matches_fresh_construction(self):
        config = fig11_config()
        baseline, _ = _drive(System(config), 600)
        first, _ = _drive(pristine_system(config), 600)
        second, _ = _drive(pristine_system(config), 600)
        assert first == baseline
        assert second == baseline

    def test_pool_reuses_one_instance(self):
        from repro import obs

        if obs.sanitize_requested():
            pytest.skip("pool self-bypasses under the sanitizer")
        config = fig11_config()
        assert pristine_system(config) is pristine_system(config)

    def test_kill_switch_forces_fresh_systems(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_WARMSTORE", "1")
        config = fig11_config()
        assert pristine_system(config) is not pristine_system(config)

    def test_pool_bypassed_under_metrics_registry(self):
        from repro.obs import metrics as obs_metrics

        obs_metrics.install(obs_metrics.MetricsRegistry())
        try:
            config = fig11_config()
            assert pristine_system(config) is not pristine_system(config)
        finally:
            obs_metrics.uninstall()

    def test_predictor_lease_does_not_poison_pool(self):
        from repro import obs

        if obs.sanitize_requested():
            pytest.skip("pool self-bypasses under the sanitizer")
        config = fig11_config()
        leased = pristine_system(config)
        leased.enable_offchip_predictor()  # what PnM-OffChip does
        again = pristine_system(config)
        assert again.offchip_predictor is None


# ---------------------------------------------------------------------------
# WarmupCache disk layer
# ---------------------------------------------------------------------------

class TestWarmupCacheDiskLayer:
    def test_explicit_keys_persist_across_cache_instances(self, tmp_path,
                                                          monkeypatch):
        monkeypatch.setenv("REPRO_WARMSTORE_DIR", str(tmp_path))
        reset_active_store()
        spec = workload_spec("bfs")
        stream = spec.refs(graph=spec.build_graph(), max_refs=1500)
        config = fig11_config()
        baseline = run_multiprogrammed(System(config), [stream, stream])
        first = run_multiprogrammed(System(config), [stream, stream],
                                    warm_cache=WarmupCache(),
                                    warm_key=("bfs", 1500))
        # A brand-new WarmupCache (a fresh process, in effect) restores
        # the warm state from disk instead of replaying the warm-up.
        reset_active_store()
        before = warmstore.counters()["hits"]
        second = run_multiprogrammed(System(config), [stream, stream],
                                     warm_cache=WarmupCache(),
                                     warm_key=("bfs", 1500))
        assert warmstore.counters()["hits"] > before
        for run in (first, second):
            assert run.cycles == baseline.cycles
            assert run.llc_misses == baseline.llc_misses
            assert run.instructions == baseline.instructions

    def test_identity_keys_stay_memory_only(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_WARMSTORE_DIR", str(tmp_path))
        reset_active_store()
        spec = workload_spec("bfs")
        stream = spec.refs(graph=spec.build_graph(), max_refs=800)
        run_multiprogrammed(System(fig11_config()), [stream, stream],
                            warm_cache=WarmupCache())
        store = warmstore.current()
        assert store is not None
        assert store.stats()["entries"] == 0  # id()-keys never hit disk


# ---------------------------------------------------------------------------
# The hard invariant: store-served == from-scratch, bit for bit
# ---------------------------------------------------------------------------

class TestWarmEquivalence:
    def test_randomized_figure_points_bit_identical(self, tmp_path,
                                                    monkeypatch):
        """fig8/fig10/fig11 points with randomized parameters, three ways:
        from scratch (kill switch), populating a cold store, and replayed
        from the populated store with every in-process memo cleared."""
        from repro.exp.figures import (
            fig8_quality_point,
            fig10_point,
            fig11_point,
        )

        seed = random.randrange(1 << 30)
        rng = random.Random(seed)
        llc_mb = rng.choice([4.0, 8.0])
        banks = rng.choice([512, 1024])
        rounds = rng.randrange(6, 14)
        max_refs = rng.randrange(2000, 4000)
        workload = rng.choice(["BC", "PR"])

        def run_points():
            return {
                "fig8": fig8_quality_point(llc_mb, bits=32,
                                           attacks=["streamline"]),
                "fig10": fig10_point(banks, rounds=rounds),
                "fig11": fig11_point(workload, max_refs=max_refs),
            }

        monkeypatch.setenv("REPRO_NO_WARMSTORE", "1")
        _clear_memos()
        scratch = run_points()

        monkeypatch.delenv("REPRO_NO_WARMSTORE")
        monkeypatch.setenv("REPRO_WARMSTORE_DIR", str(tmp_path))
        _clear_memos()
        cold = run_points()
        assert cold == scratch, f"cold pass diverged (seed={seed})"

        _clear_memos()  # force reuse through the on-disk store
        before = warmstore.counters()["hits"]
        warm = run_points()
        assert warmstore.counters()["hits"] > before
        assert warm == scratch, f"warm pass diverged (seed={seed})"
        _clear_memos()
