"""Integration tests: the end-to-end read mapper and its PiM offload."""

import pytest

from repro import System, SystemConfig
from repro.cache import HierarchyConfig
from repro.dram import DRAMGeometry
from repro.genomics import (
    PimReadMapper,
    ReadMapper,
    ReferenceIndex,
    generate_reference,
    mutate_genome,
    sample_reads,
)
from repro.sim import Scheduler

REF = generate_reference(6000, seed=11)
INDEX = ReferenceIndex(REF, num_banks=16)
MAPPER = ReadMapper(REF, INDEX)


def small_system():
    return System(SystemConfig(
        geometry=DRAMGeometry(ranks=1, banks_per_rank=16, rows_per_bank=4096),
        hierarchy=HierarchyConfig(num_cores=2, llc_size_mb=2.0,
                                  prefetchers_enabled=False),
        num_cores=2))


def test_exact_reads_map_to_true_positions():
    reads = sample_reads(REF, num_reads=10, read_length=150,
                         error_rate=0.0, seed=3)
    for read, true_pos in reads:
        result = MAPPER.map_read(read)
        assert result is not None
        assert abs(result.position - true_pos) <= 64


def test_error_bearing_reads_still_map():
    reads = sample_reads(REF, num_reads=10, read_length=150,
                         error_rate=0.01, seed=4)
    accuracy = MAPPER.mapping_accuracy(reads)
    assert accuracy >= 0.8


def test_sample_genome_reads_map_against_reference():
    """The §4.3 victim workload: sample-genome reads vs the reference."""
    sample = mutate_genome(REF, seed=9)
    reads = sample_reads(sample, num_reads=8, read_length=150,
                         error_rate=0.002, seed=5)
    mapped = sum(1 for read, _pos in reads if MAPPER.map_read(read) is not None)
    assert mapped >= 6


def test_random_read_does_not_map():
    foreign = generate_reference(150, seed=999)
    assert MAPPER.map_read(foreign) is None


def test_alignment_quality_reported():
    read, _pos = sample_reads(REF, num_reads=1, read_length=150,
                              error_rate=0.0, seed=6)[0]
    result = MAPPER.map_read(read)
    assert result.alignment.identity > 0.95
    assert result.score > 0


def test_pim_mapper_seed_accesses_match_index_layout():
    system = small_system()
    pim = PimReadMapper(system, REF, INDEX, mapper=MAPPER)
    read, _pos = sample_reads(REF, num_reads=1, read_length=150,
                              error_rate=0.0, seed=7)[0]
    accesses = pim.seed_accesses(read)
    assert accesses
    for access in accesses:
        loc = INDEX.location_of_hash(access.hash_value)
        assert loc is not None
        assert (access.bank, access.row) == (loc.bank, loc.row)
        assert 0 <= access.bank < 16


def test_pim_mapper_probe_activates_bank():
    system = small_system()
    pim = PimReadMapper(system, REF, INDEX, mapper=MAPPER)
    read, _pos = sample_reads(REF, num_reads=1, read_length=150,
                              error_rate=0.0, seed=7)[0]
    access = pim.seed_accesses(read)[0]
    sched = Scheduler()

    def victim(ctx, _sys):
        pim.probe(ctx, access)
        yield None

    sched.spawn(victim, system, name="victim")
    sched.run()
    assert system.controller.open_rows()[access.bank] == access.row


def test_pim_mapper_trace_concatenates_reads():
    system = small_system()
    pim = PimReadMapper(system, REF, INDEX, mapper=MAPPER)
    reads = [r for r, _ in sample_reads(REF, num_reads=3, read_length=120,
                                        error_rate=0.0, seed=8)]
    trace = pim.trace_for_reads(reads)
    assert len(trace) == sum(len(pim.seed_accesses(r)) for r in reads)


def test_pim_mapper_mapping_output_unchanged():
    system = small_system()
    pim = PimReadMapper(system, REF, INDEX, mapper=MAPPER)
    read, true_pos = sample_reads(REF, num_reads=1, read_length=150,
                                  error_rate=0.0, seed=10)[0]
    result = pim.map_read(read)
    assert result is not None
    assert abs(result.position - true_pos) <= 64


def test_reverse_strand_reads_map():
    """Half of real sequencing reads come from the reverse strand; the
    mapper retries with the reverse complement."""
    from repro.genomics import reverse_complement
    reads = sample_reads(REF, num_reads=6, read_length=150, error_rate=0.0,
                         seed=13, both_strands=True)
    reversed_any = any(read != REF[pos:pos + 150] for read, pos in reads)
    assert reversed_any  # the sampler actually flipped some
    for read, true_pos in reads:
        result = MAPPER.map_read(read)
        assert result is not None
        assert abs(result.position - true_pos) <= 64


def test_reverse_complement_involution():
    from repro.genomics import reverse_complement
    assert reverse_complement("ACGT") == "ACGT"
    assert reverse_complement("AACC") == "GGTT"
    assert reverse_complement(reverse_complement("ACGGTTAC")) == "ACGGTTAC"
    import pytest as _pytest
    with _pytest.raises(ValueError):
        reverse_complement("ACGN")
