"""Unit tests for minimizers, the reference index, chaining, alignment."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.genomics import (
    Anchor,
    ReferenceIndex,
    banded_align,
    chain_anchors,
    extract_minimizers,
    generate_reference,
    hash_kmer,
)
from repro.genomics.minimizers import encode_kmer

DNA = st.text(alphabet="ACGT", min_size=30, max_size=120)


# ---------------------------------------------------------------------------
# Minimizers
# ---------------------------------------------------------------------------

def test_encode_kmer_two_bits_per_base():
    assert encode_kmer("A") == 0
    assert encode_kmer("T") == 3
    assert encode_kmer("AC") == 1
    assert encode_kmer("CA") == 4
    with pytest.raises(ValueError):
        encode_kmer("ACGN")


def test_hash_kmer_deterministic_and_spread():
    assert hash_kmer("ACGTACGTACGTACG") == hash_kmer("ACGTACGTACGTACG")
    hashes = {hash_kmer("ACGTACGTACGTACG"[i:] + "A" * i) for i in range(8)}
    assert len(hashes) == 8


def test_minimizers_shared_by_identical_substrings():
    """The seeding guarantee: matching regions share minimizers."""
    ref = generate_reference(400, seed=1)
    fragment = ref[100:220]
    ref_minimizers = {m.hash_value for m in extract_minimizers(ref)}
    frag_minimizers = extract_minimizers(fragment)
    assert frag_minimizers
    shared = [m for m in frag_minimizers if m.hash_value in ref_minimizers]
    assert len(shared) >= len(frag_minimizers) * 0.8


def test_minimizers_sparser_than_kmers():
    seq = generate_reference(500, seed=2)
    minimizers = extract_minimizers(seq, k=15, w=10)
    assert 0 < len(minimizers) < len(seq) - 15 + 1


def test_minimizers_short_sequence_empty():
    assert extract_minimizers("ACGT", k=15, w=10) == []


def test_minimizers_validation():
    with pytest.raises(ValueError):
        extract_minimizers("ACGTACGT", k=0)


@given(seq=DNA)
@settings(max_examples=30)
def test_minimizer_positions_valid(seq):
    for m in extract_minimizers(seq, k=11, w=5):
        assert 0 <= m.position <= len(seq) - 11
        assert hash_kmer(seq[m.position:m.position + 11]) == m.hash_value


# ---------------------------------------------------------------------------
# Reference index
# ---------------------------------------------------------------------------

def make_index(num_banks=16):
    ref = generate_reference(3000, seed=7)
    return ref, ReferenceIndex(ref, num_banks=num_banks)


def test_index_lookup_returns_positions():
    ref, index = make_index()
    minimizers = extract_minimizers(ref)
    sample = minimizers[len(minimizers) // 2]
    positions = index.lookup(sample.hash_value)
    assert sample.position in positions


def test_index_absent_hash_empty():
    _, index = make_index()
    assert index.lookup(123456789) == []
    assert not index.contains(123456789)


def test_index_entries_stripe_across_banks():
    _, index = make_index(num_banks=8)
    for entry in range(min(64, len(index))):
        loc = index.location_of_entry(entry)
        assert loc.bank == entry % 8
        assert loc.row >= index.rows_per_bank_offset


def test_index_entries_per_bank_halves_with_doubling():
    """§5.4: more banks => fewer candidate entries per bank => a more
    precise leak."""
    _, index = make_index(num_banks=8)
    double = index.restripe(16)
    assert double.entries_per_bank == pytest.approx(index.entries_per_bank / 2)
    assert len(double) == len(index)


def test_index_candidates_in_bank():
    _, index = make_index(num_banks=4)
    candidates = index.candidates_in_bank(1)
    assert all(c % 4 == 1 for c in candidates)
    with pytest.raises(ValueError):
        index.candidates_in_bank(4)


def test_index_location_validation():
    _, index = make_index()
    with pytest.raises(ValueError):
        index.location_of_entry(len(index))


# ---------------------------------------------------------------------------
# Chaining
# ---------------------------------------------------------------------------

def test_chain_colinear_anchors():
    anchors = [Anchor(read_pos=i * 20, ref_pos=500 + i * 20) for i in range(5)]
    chain = chain_anchors(anchors, min_score=10)
    assert chain is not None
    assert len(chain.anchors) == 5
    assert chain.ref_start == 500


def test_chain_rejects_inconsistent_anchors():
    """Anchors scattered across the reference cannot form one chain."""
    anchors = [Anchor(read_pos=0, ref_pos=100),
               Anchor(read_pos=10, ref_pos=90_000),
               Anchor(read_pos=20, ref_pos=50)]
    chain = chain_anchors(anchors, min_score=25)
    assert chain is None or len(chain.anchors) == 1 or chain.score < 40


def test_chain_prefers_dense_diagonal():
    diagonal = [Anchor(read_pos=i * 16, ref_pos=1000 + i * 16) for i in range(6)]
    stray = [Anchor(read_pos=5, ref_pos=70_000)]
    chain = chain_anchors(diagonal + stray, min_score=10)
    assert chain is not None
    assert all(1000 <= a.ref_pos < 1200 for a in chain.anchors)


def test_chain_empty_input():
    assert chain_anchors([]) is None


def test_chain_min_score_gate():
    assert chain_anchors([Anchor(read_pos=0, ref_pos=0, length=5)],
                         min_score=50.0) is None


# ---------------------------------------------------------------------------
# Alignment
# ---------------------------------------------------------------------------

def test_align_identical_sequences():
    result = banded_align("ACGTACGTAC", "ACGTACGTAC")
    assert result.mismatches == 0
    assert result.gaps == 0
    assert result.identity == 1.0
    assert result.cigar == "10M"
    assert result.score == 20


def test_align_substitution():
    result = banded_align("ACGTACGTAC", "ACGTTCGTAC")
    assert result.mismatches == 1
    assert result.matches == 9


def test_align_insertion_gap():
    result = banded_align("ACGTAACGT", "ACGTACGT")
    assert result.gaps == 1
    assert result.matches == 8


def test_align_band_too_narrow_handled():
    # band is widened automatically to cover the length difference
    result = banded_align("A" * 10, "A" * 40, band=1)
    assert result.matches == 10


def test_align_validation():
    with pytest.raises(ValueError):
        banded_align("ACGT", "ACGT", band=0)


@given(seq=DNA)
@settings(max_examples=25)
def test_align_self_is_perfect(seq):
    result = banded_align(seq, seq)
    assert result.identity == 1.0
    assert result.score == 2 * len(seq)
