"""Unit and property tests for synthetic genome/read generation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.genomics import generate_reference, mutate_genome, sample_reads
from repro.genomics.sequences import ALPHABET


def test_reference_deterministic_and_valid():
    a = generate_reference(500, seed=3)
    b = generate_reference(500, seed=3)
    assert a == b
    assert len(a) == 500
    assert set(a) <= set(ALPHABET)
    assert generate_reference(500, seed=4) != a


def test_reference_rejects_bad_length():
    with pytest.raises(ValueError):
        generate_reference(0)


def test_mutation_produces_similar_but_distinct_genome():
    ref = generate_reference(2000, seed=0)
    sample = mutate_genome(ref, snp_rate=0.01, indel_rate=0.002, seed=1)
    assert sample != ref
    # Length within indel drift.
    assert abs(len(sample) - len(ref)) < len(ref) * 0.05


def test_mutation_snps_only_preserves_positions():
    ref = generate_reference(2000, seed=0)
    sample = mutate_genome(ref, snp_rate=0.01, indel_rate=0.0, seed=1)
    assert len(sample) == len(ref)
    same = sum(1 for a, b in zip(ref, sample) if a == b)
    # ~1% substitution rate: the overwhelming majority is unchanged.
    assert same > len(ref) * 0.97


def test_mutation_indels_change_length():
    ref = generate_reference(5000, seed=0)
    sample = mutate_genome(ref, snp_rate=0.0, indel_rate=0.01, seed=1)
    assert len(sample) != len(ref)


def test_mutation_zero_rates_is_identity():
    ref = generate_reference(300, seed=0)
    assert mutate_genome(ref, snp_rate=0.0, indel_rate=0.0) == ref


def test_mutation_rate_validation():
    ref = generate_reference(100, seed=0)
    with pytest.raises(ValueError):
        mutate_genome(ref, snp_rate=2.0)


def test_reads_carry_true_positions():
    genome = generate_reference(1000, seed=5)
    reads = sample_reads(genome, num_reads=20, read_length=100,
                         error_rate=0.0, seed=6)
    assert len(reads) == 20
    for read, pos in reads:
        assert read == genome[pos:pos + 100]


def test_reads_with_errors_differ():
    genome = generate_reference(1000, seed=5)
    reads = sample_reads(genome, num_reads=10, read_length=100,
                         error_rate=0.2, seed=6)
    assert any(read != genome[pos:pos + 100] for read, pos in reads)


def test_reads_validation():
    genome = generate_reference(50, seed=0)
    with pytest.raises(ValueError):
        sample_reads(genome, num_reads=1, read_length=100)
    with pytest.raises(ValueError):
        sample_reads(genome, num_reads=-1, read_length=10)


@given(length=st.integers(min_value=200, max_value=1000),
       seed=st.integers(min_value=0, max_value=100))
@settings(max_examples=20)
def test_reads_always_within_genome(length, seed):
    genome = generate_reference(length, seed=seed)
    for read, pos in sample_reads(genome, num_reads=5, read_length=50,
                                  seed=seed):
        assert 0 <= pos <= length - 50
        assert len(read) == 50
