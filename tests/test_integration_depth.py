"""Depth tests: cross-module behaviours not covered by the unit suites."""

from dataclasses import replace

import pytest

from repro import System, SystemConfig
from repro.attacks import (
    ChannelResult,
    DramaClflushChannel,
    ImpactPnmChannel,
    ImpactPumChannel,
)
from repro.cache import CacheHierarchy, HierarchyConfig
from repro.dram import (
    AccessKind,
    DRAMGeometry,
    MemoryController,
    MemoryControllerConfig,
    RowPolicy,
)
from repro.sim import Scheduler


def small_config(**overrides):
    cfg = SystemConfig(
        geometry=DRAMGeometry(ranks=1, banks_per_rank=16, rows_per_bank=4096),
        hierarchy=HierarchyConfig(num_cores=2, llc_size_mb=2.0,
                                  prefetchers_enabled=False),
        num_cores=2)
    return replace(cfg, **overrides) if overrides else cfg


# ---------------------------------------------------------------------------
# Hierarchy: write paths and prefetch-stall coupling
# ---------------------------------------------------------------------------

def test_store_dirties_through_levels_and_writes_back():
    controller = MemoryController(MemoryControllerConfig(
        geometry=DRAMGeometry(ranks=1, banks_per_rank=16, rows_per_bank=4096)))
    h = CacheHierarchy(HierarchyConfig(num_cores=1, llc_size_mb=1.0 / 16,
                                       prefetchers_enabled=False), controller)
    h.access(core=0, addr=0x0, issued=0, is_write=True)
    writes_before = controller.requestor_stats.get("cpu")
    # Evict the dirty line out of the tiny LLC.
    for i, addr in enumerate(h.build_eviction_set(0x0, size=64)):
        h.access(core=0, addr=addr, issued=1000 * (i + 1))
    assert h.stats.memory_writebacks >= 1
    assert controller.requestor_stats["cpu"].writes >= 1


def test_late_prefetch_stall_charged_once():
    controller = MemoryController(MemoryControllerConfig(
        geometry=DRAMGeometry(ranks=1, banks_per_rank=16, rows_per_bank=4096)))
    h = CacheHierarchy(HierarchyConfig(num_cores=1, llc_size_mb=2.0,
                                       prefetchers_enabled=True), controller)
    # Train the streamer, then demand the prefetched line immediately.
    base = 0x200000
    for i in range(4):
        h.access(core=0, addr=base + i * 64, issued=i * 10, pc=0x400)
    stalls_before = h.stats.late_prefetch_stalls
    first = h.access(core=0, addr=base + 4 * 64, issued=45, pc=0x400)
    if h.stats.late_prefetch_stalls > stalls_before:
        # The stalled access waited for the in-flight fill...
        assert first.hit_level in (2, 3)
        # ...and a re-access later is an ordinary fast hit.
        again = h.access(core=0, addr=base + 4 * 64, issued=100_000, pc=0x400)
        assert again.latency <= first.latency


def test_hierarchy_rebase_clears_inflight_fills():
    controller = MemoryController(MemoryControllerConfig(
        geometry=DRAMGeometry(ranks=1, banks_per_rank=16, rows_per_bank=4096)))
    h = CacheHierarchy(HierarchyConfig(num_cores=1, llc_size_mb=2.0,
                                       prefetchers_enabled=True), controller)
    for i in range(6):
        h.access(core=0, addr=0x300000 + i * 64, issued=i * 10, pc=0x404)
    h.rebase_time()
    assert not h._inflight_fills


# ---------------------------------------------------------------------------
# Controller: defense interactions with PiM operations
# ---------------------------------------------------------------------------

def test_ctd_pads_rowclone_latencies_flat():
    mc = MemoryController(MemoryControllerConfig(
        geometry=DRAMGeometry(ranks=1, banks_per_rank=16, rows_per_bank=4096),
        constant_time=True))
    src = mc.address_of(bank=0, row=10)
    dst = mc.address_of(bank=0, row=20)
    latencies = set()
    now = 0
    for _ in range(4):
        results = mc.rowclone(src, dst, 0b1, issued=now)
        latencies.add(results[0].latency)
        now = results[0].finish + 1000
    assert len(latencies) == 1


def test_crp_closes_rows_after_rowclone():
    mc = MemoryController(MemoryControllerConfig(
        geometry=DRAMGeometry(ranks=1, banks_per_rank=16, rows_per_bank=4096),
        row_policy=RowPolicy.CLOSED))
    src = mc.address_of(bank=0, row=10)
    dst = mc.address_of(bank=0, row=20)
    mc.rowclone(src, dst, 0b11, issued=0)
    assert mc.open_rows()[0] is None
    assert mc.open_rows()[1] is None


def test_partitioning_covers_rowclone_and_activate():
    from repro.dram import PartitionViolationError
    mc = MemoryController(MemoryControllerConfig(
        geometry=DRAMGeometry(ranks=1, banks_per_rank=16, rows_per_bank=4096)))
    mc.partition_banks("victim", [0, 1])
    src = mc.address_of(bank=0, row=10)
    with pytest.raises(PartitionViolationError):
        mc.rowclone(src, src, 0b1, issued=0, requestor="attacker")
    with pytest.raises(PartitionViolationError):
        mc.activate(bank_index=1, row=3, issued=0, requestor="attacker")


# ---------------------------------------------------------------------------
# Channels under defended / noisy systems
# ---------------------------------------------------------------------------

def test_pum_channel_dies_under_ctd():
    channel = ImpactPumChannel(System(small_config().with_defense("ctd")))
    result = channel.transmit_random(96, seed=3)
    assert abs(result.error_rate - 0.5) < 0.2


def test_pum_channel_with_noise_still_useful():
    channel = ImpactPumChannel(System(small_config().with_noise(1.0)))
    result = channel.transmit_random(192, seed=3)
    assert result.error_rate < 0.2
    assert result.throughput_mbps > 5.0


def test_drama_channel_with_prefetchers_enabled():
    """Prefetchers are on in Table 2; the single-bank DRAMA protocol must
    tolerate their stray traffic."""
    cfg = small_config()
    cfg = replace(cfg, hierarchy=replace(cfg.hierarchy,
                                         prefetchers_enabled=True))
    result = DramaClflushChannel(System(cfg)).transmit_random(96, seed=4)
    assert result.error_rate < 0.15


def test_impact_channels_in_one_process_space():
    """PnM and PuM channels on the same system, sequentially: the second
    transmission is unaffected by the first's residual row state."""
    system = System(small_config())
    first = ImpactPnmChannel(system).transmit_random(64, seed=5)
    second = ImpactPumChannel(system).transmit_random(64, seed=6)
    assert first.error_rate == 0.0
    assert second.error_rate == 0.0


# ---------------------------------------------------------------------------
# Config plumbing
# ---------------------------------------------------------------------------

def test_describe_reflects_overrides():
    cfg = small_config().with_llc(16.0).with_defense("crp")
    rows = {r["component"]: r["configuration"] for r in cfg.describe()}
    assert "closed-row policy" in rows["Main Memory"]
    assert "8 MB/core" in rows["L3 Cache"]  # 16 MB over 2 cores


def test_noise_config_validation():
    with pytest.raises(ValueError):
        small_config().with_noise(-1.0)


def test_channel_result_probe_latency_bookkeeping():
    result = ChannelResult(attack="t", sent=[1, 0], received=[1, 0],
                           cycles=100, cpu_hz=2.6e9,
                           probe_latencies=[180, 90])
    assert result.probe_latencies == [180, 90]
    with pytest.raises(ValueError):
        ChannelResult(attack="t", sent=[1], received=[1], cycles=-1,
                      cpu_hz=2.6e9)
