"""Unit tests for TLBs, the page-table walker, and the MMU."""

import pytest

from repro.cache import CacheHierarchy, HierarchyConfig
from repro.dram import DRAMGeometry, MemoryController, MemoryControllerConfig
from repro.mmu import MMU, MMUConfig, PageTableWalker, TLB, TLBConfig

GEOM = DRAMGeometry(ranks=1, banks_per_rank=16, rows_per_bank=4096)


def make_hierarchy():
    controller = MemoryController(MemoryControllerConfig(geometry=GEOM))
    return CacheHierarchy(HierarchyConfig(num_cores=1, llc_size_mb=2.0,
                                          prefetchers_enabled=False), controller)


# ---------------------------------------------------------------------------
# TLB
# ---------------------------------------------------------------------------

def test_tlb_miss_then_fill_then_hit():
    tlb = TLB(TLBConfig())
    assert not tlb.lookup(0x1000)
    tlb.fill(0x1000)
    assert tlb.lookup(0x1234)  # same 4K page
    assert not tlb.lookup(0x2000)


def test_tlb_lru_eviction_within_set():
    config = TLBConfig(entries=4, ways=2)  # 2 sets
    tlb = TLB(config)
    pages = [0, 2, 4]  # all map to set 0
    tlb.fill(pages[0] * 4096)
    tlb.fill(pages[1] * 4096)
    tlb.lookup(pages[0] * 4096)  # page 0 most recent
    evicted = tlb.fill(pages[2] * 4096)
    assert evicted == 2


def test_tlb_flush():
    tlb = TLB(TLBConfig())
    tlb.fill(0x1000)
    tlb.flush()
    assert not tlb.lookup(0x1000)


def test_tlb_huge_page_granularity():
    tlb = TLB(TLBConfig(name="2M", entries=32, ways=4,
                        page_bytes=2 * 1024 * 1024))
    tlb.fill(0x0)
    assert tlb.lookup(2 * 1024 * 1024 - 1)
    assert not tlb.lookup(2 * 1024 * 1024)


def test_tlb_config_validation():
    with pytest.raises(ValueError):
        TLBConfig(entries=5, ways=2)
    with pytest.raises(ValueError):
        TLBConfig(page_bytes=3000)


# ---------------------------------------------------------------------------
# Page-table walker
# ---------------------------------------------------------------------------

def test_walker_issues_four_level_walk():
    h = make_hierarchy()
    walker = PageTableWalker(h, table_base=0x200000)
    before = h.stats.demand_accesses
    latency = walker.walk(core=0, vaddr=0x12345000, issued=0)
    assert h.stats.demand_accesses - before == 4
    assert latency > 0
    assert walker.walks == 1


def test_walker_entry_addresses_deterministic_and_in_region():
    h = make_hierarchy()
    walker = PageTableWalker(h, table_base=0x200000, table_bytes=1 << 20)
    addrs = walker.entry_addresses(0xABCDE000)
    assert addrs == walker.entry_addresses(0xABCDE000)
    for addr in addrs:
        assert 0x200000 <= addr < 0x200000 + (1 << 20)


def test_walker_warm_walk_is_cheaper():
    h = make_hierarchy()
    walker = PageTableWalker(h, table_base=0x200000)
    cold = walker.walk(core=0, vaddr=0x777000, issued=0)
    warm = walker.walk(core=0, vaddr=0x777000, issued=100_000)
    assert warm < cold


# ---------------------------------------------------------------------------
# MMU
# ---------------------------------------------------------------------------

def test_mmu_l1_hit_is_one_cycle():
    h = make_hierarchy()
    walker = PageTableWalker(h, table_base=0x200000)
    mmu = MMU(MMUConfig(), walker, core=0)
    mmu.translate(0x5000, issued=0)
    result = mmu.translate(0x5000, issued=10_000)
    assert result.l1_hit
    assert result.latency == 1


def test_mmu_miss_walks_and_fills():
    h = make_hierarchy()
    walker = PageTableWalker(h, table_base=0x200000)
    mmu = MMU(MMUConfig(), walker, core=0)
    result = mmu.translate(0x9000, issued=0)
    assert result.walked
    assert result.latency > 13  # 1 (L1) + 12 (L2) + walk
    assert result.paddr == 0x9000


def test_mmu_l2_hit_path():
    h = make_hierarchy()
    walker = PageTableWalker(h, table_base=0x200000)
    mmu = MMU(MMUConfig(), walker, core=0)
    mmu.translate(0x9000, issued=0)
    mmu.l1_4k.flush()
    result = mmu.translate(0x9000, issued=10_000)
    assert result.l2_hit and not result.walked
    assert result.latency == 13


def test_mmu_warm_up_prefills():
    """The attacks' warm-up (§5.1) removes page-walk noise."""
    h = make_hierarchy()
    walker = PageTableWalker(h, table_base=0x200000)
    mmu = MMU(MMUConfig(), walker, core=0)
    mmu.warm_up([0x1000, 0x2000])
    assert mmu.translate(0x1000, issued=0).l1_hit
    assert mmu.translate(0x2000, issued=0).l1_hit
    assert walker.walks == 0


def test_mmu_huge_pages_use_2m_tlb():
    h = make_hierarchy()
    walker = PageTableWalker(h, table_base=0x200000)
    mmu = MMU(MMUConfig(), walker, core=0, huge_pages=True)
    mmu.translate(0x0, issued=0)
    result = mmu.translate(0x1FFFFF, issued=1000)  # same 2M page
    assert result.l1_hit
