"""Tests for the metrics registry and phase profiler (repro.obs.metrics)."""

import json

import pytest

from repro import System, SystemConfig
from repro.attacks import ImpactPnmChannel
from repro.obs import metrics as m
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_PHASE,
    Histogram,
    MetricsRegistry,
)


@pytest.fixture(autouse=True)
def _no_leaked_registry():
    """Every test starts and ends with no global registry installed."""
    m.uninstall()
    yield
    m.uninstall()


# ---------------------------------------------------------------------------
# Instruments
# ---------------------------------------------------------------------------

def test_counter_and_gauge_mechanics():
    reg = MetricsRegistry()
    reg.counter("c").inc()
    reg.counter("c").inc(4)
    assert reg.counter("c").value == 5
    reg.gauge("g").set(3.0)
    reg.gauge("g").update_max(2.0)  # smaller: ignored
    reg.gauge("g").update_max(7.0)
    assert reg.gauge("g").value == 7.0


def test_histogram_buckets_and_summary():
    h = Histogram("h", edges=(10, 20, 30))
    for value in (5, 10, 11, 25, 999):
        h.observe(value)
    # <=10, <=20, <=30, overflow
    assert h.counts == [2, 1, 1, 1]
    assert h.count == 5
    assert h.minimum == 5 and h.maximum == 999
    assert h.mean == pytest.approx(210.0)
    d = h.to_dict()
    assert d["edges"] == [10, 20, 30]
    assert d["counts"] == [2, 1, 1, 1]


def test_histogram_rejects_unsorted_edges():
    with pytest.raises(ValueError):
        Histogram("h", edges=(3, 1, 2))
    with pytest.raises(ValueError):
        Histogram("h", edges=())


def test_registry_creates_instruments_once():
    reg = MetricsRegistry()
    assert reg.counter("x") is reg.counter("x")
    assert reg.gauge("y") is reg.gauge("y")
    assert reg.histogram("z") is reg.histogram("z")
    assert reg.histogram("z").edges == tuple(DEFAULT_LATENCY_BUCKETS)


# ---------------------------------------------------------------------------
# Phase profiler
# ---------------------------------------------------------------------------

def test_profiler_accumulates_and_reports_ops_per_sec():
    reg = MetricsRegistry()
    with reg.profiler.phase("work") as ph:
        ph.add_ops(100)
    with reg.profiler.phase("work") as ph:
        ph.add_ops(50)
    entry = reg.profiler.to_dict()["work"]
    assert entry["calls"] == 2
    assert entry["ops"] == 150
    assert entry["seconds"] >= 0
    assert "ops_per_sec" in entry


def test_module_phase_is_noop_without_registry():
    assert m.current() is None
    assert m.phase("anything") is NULL_PHASE
    with m.phase("anything") as ph:
        ph.add_ops(3)  # must be accepted and discarded


def test_module_phase_records_with_registry():
    reg = m.install(MetricsRegistry())
    assert m.current() is reg
    with m.phase("p") as ph:
        ph.add_ops(2)
    assert reg.profiler.to_dict()["p"]["ops"] == 2


# ---------------------------------------------------------------------------
# End to end through the simulator
# ---------------------------------------------------------------------------

def test_system_streams_into_installed_registry():
    reg = m.install(MetricsRegistry())
    system = System(SystemConfig.paper_default())
    result = ImpactPnmChannel(system).transmit_random(16, seed=3)
    counters = reg.to_dict()["counters"]
    assert counters["channel.bits"] == 16
    assert counters["dram.RD"] > 0
    assert counters["pei.memory"] > 0
    assert counters["sched.resume"] > 0
    assert reg.histograms["channel.probe_latency"].count == 16
    phases = reg.profiler.to_dict()
    assert "warm-up" in phases and "transmit" in phases
    assert phases["transmit:IMPACT-PnM"]["ops"] == 16
    assert result.bits == 16


def test_metrics_off_leaves_system_uninstrumented():
    system = System(SystemConfig.paper_default())
    assert system.metrics is None
    result = ImpactPnmChannel(system).transmit_random(16, seed=3)
    assert result.bits == 16


def test_metrics_do_not_change_results():
    baseline = ImpactPnmChannel(
        System(SystemConfig.paper_default())).transmit_random(32, seed=5)
    m.install(MetricsRegistry())
    measured = ImpactPnmChannel(
        System(SystemConfig.paper_default())).transmit_random(32, seed=5)
    assert measured.received == baseline.received
    assert measured.cycles == baseline.cycles
    assert measured.probe_latencies == baseline.probe_latencies


# ---------------------------------------------------------------------------
# Export and merging
# ---------------------------------------------------------------------------

def test_write_json_roundtrip(tmp_path):
    reg = MetricsRegistry()
    reg.counter("a").inc(3)
    reg.histogram("h", edges=(1, 2)).observe(1)
    path = reg.write_json(str(tmp_path / "m.json"), extra={"label": "L"})
    data = json.loads((tmp_path / "m.json").read_text())
    assert path.endswith("m.json")
    assert data["label"] == "L"
    assert data["counters"]["a"] == 3
    assert data["histograms"]["h"]["count"] == 1


def test_merge_dicts_sums_and_maxes():
    a = MetricsRegistry()
    a.counter("c").inc(2)
    a.gauge("g").set(5.0)
    a.histogram("h", edges=(10, 20)).observe(5)
    a.profiler.record("p", 1.0, ops=10)
    b = MetricsRegistry()
    b.counter("c").inc(3)
    b.gauge("g").set(3.0)
    b.histogram("h", edges=(10, 20)).observe(15)
    b.profiler.record("p", 1.0, ops=30)
    merged = MetricsRegistry.merge_dicts([a.to_dict(), b.to_dict()])
    assert merged["counters"]["c"] == 5
    assert merged["gauges"]["g"] == 5.0
    assert merged["histograms"]["h"]["counts"] == [1, 1, 0]
    assert merged["histograms"]["h"]["count"] == 2
    assert merged["histograms"]["h"]["min"] == 5
    assert merged["histograms"]["h"]["max"] == 15
    assert merged["phases"]["p"]["ops"] == 40
    assert merged["phases"]["p"]["ops_per_sec"] == pytest.approx(20.0)


def test_merge_dicts_rejects_mismatched_edges():
    a = MetricsRegistry()
    a.histogram("h", edges=(1, 2)).observe(1)
    b = MetricsRegistry()
    b.histogram("h", edges=(1, 3)).observe(1)
    with pytest.raises(ValueError, match="mismatched edges"):
        MetricsRegistry.merge_dicts([a.to_dict(), b.to_dict()])


def test_histogram_observe_many_matches_observe_loop():
    loop = Histogram("h", edges=(10, 20, 30))
    batch = Histogram("h", edges=(10, 20, 30))
    values = [5, 10, 15, 25, 40, 12, 30]
    for value in values:
        loop.observe(value)
    batch.observe_many(values)
    assert batch.to_dict() == loop.to_dict()


def test_histogram_observe_many_accepts_iterators_and_empty():
    h = Histogram("h", edges=(10,))
    h.observe_many(iter([5, 15]))
    assert h.count == 2 and h.minimum == 5 and h.maximum == 15
    h.observe_many([])
    h.observe_many(iter(()))
    assert h.count == 2
