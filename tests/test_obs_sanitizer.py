"""Sanitizer + timing-model regression tests (the repro.obs bugfix PR).

Covers the invariant checker itself plus one regression test per timing
fix it surfaced: refresh-window ordering under queuing, open-row-timeout
unification between ``classify`` and ``access_raw``, tRAS on explicit
precharges, and the refresh-epoch carry through clock rebases and
snapshots.  Ends with the property test: randomized multi-requestor
traffic under a strict sanitizer, bit-identical to the unsanitized run.
"""

import random
from dataclasses import replace

import pytest

from repro.config import SystemConfig
from repro.dram import (AccessKind, Bank, DRAMGeometry, DRAMTimings,
                        MemoryController, MemoryControllerConfig, RowPolicy)
from repro.obs import MultiObserver, Sanitizer, SanitizerError
from repro.system import System

GEOM = DRAMGeometry(ranks=2, banks_per_rank=4, rows_per_bank=512,
                    row_bytes=2048)


def make_controller(**kwargs):
    defaults = dict(geometry=GEOM)
    defaults.update(kwargs)
    return MemoryController(MemoryControllerConfig(**defaults))


# ---------------------------------------------------------------------------
# Sanitizer mechanics
# ---------------------------------------------------------------------------

class TestSanitizer:
    def test_strict_raises_on_violation(self):
        s = Sanitizer()
        bank = Bank(index=0, timings=DRAMTimings())
        with pytest.raises(SanitizerError, match="ordering"):
            # finish before issue is impossible
            s.on_dram_access("RD", 0, 1, AccessKind.HIT, "cpu",
                             100, 104, 104, 50, AccessKind.HIT, bank)

    def test_non_strict_collects(self):
        s = Sanitizer(strict=False)
        bank = Bank(index=0, timings=DRAMTimings())
        s.on_dram_access("RD", 0, 1, AccessKind.HIT, "cpu",
                         100, 104, 104, 50, AccessKind.HIT, bank)
        assert not s.ok
        assert len(s.violations) == 1
        assert "violation" in s.report()

    def test_flags_classify_disagreement(self):
        s = Sanitizer(strict=False)
        bank = Bank(index=0, timings=DRAMTimings())
        s.on_dram_access("RD", 0, 1, AccessKind.CONFLICT, "cpu",
                         0, 4, 4, 110, AccessKind.HIT, bank)
        assert any("classify" in v for v in s.violations)

    def test_flags_busy_until_regression(self):
        s = Sanitizer(strict=False)
        bank = Bank(index=0, timings=DRAMTimings())
        bank.busy_until = 500
        s.on_dram_access("RD", 0, 1, AccessKind.HIT, "cpu",
                         0, 4, 4, 500, AccessKind.HIT, bank)
        bank.busy_until = 400  # illegally rewound
        s.on_dram_access("RD", 0, 1, AccessKind.HIT, "cpu",
                         300, 304, 304, 400, AccessKind.HIT, bank)
        assert any("backwards" in v for v in s.violations)

    def test_clock_reset_restarts_monotonicity_floor(self):
        s = Sanitizer()
        bank = Bank(index=0, timings=DRAMTimings())
        bank.busy_until = 500
        s.on_dram_access("RD", 0, 1, AccessKind.HIT, "cpu",
                         0, 4, 4, 500, AccessKind.HIT, bank)
        s.on_clock_reset("rebase")
        bank.busy_until = 39  # legal: clocks were rebased
        s.on_dram_access("RD", 0, 1, AccessKind.HIT, "cpu",
                         0, 4, 4, 39, AccessKind.HIT, bank)
        assert s.ok

    def test_thread_resume_monotonic_per_scheduler(self):
        s = Sanitizer(strict=False)
        s.on_thread_resume("sender", 100, 1)
        s.on_thread_resume("sender", 250, 1)
        # Same name, *different* scheduler instance: fresh clock, no flag.
        s.on_thread_resume("sender", 0, 2)
        assert s.ok
        s.on_thread_resume("sender", 90, 1)  # same scheduler, rewound
        assert not s.ok

    def test_tras_violation_flagged_on_explicit_pre(self):
        t = DRAMTimings()
        s = Sanitizer(strict=False)
        mc = make_controller()
        s.bind_device(mc.device)
        bank = mc.device.banks[0]
        bank.open_row = None
        s.on_precharge(0, 10, 10, 10 + t.rp_cycles,
                       opened_at=0, had_row=True, bank=bank)
        assert any("tRAS" in v for v in s.violations)


def test_env_flag_attaches_sanitizer(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert System().sanitizer is not None
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert System().sanitizer is None
    monkeypatch.delenv("REPRO_SANITIZE")
    assert System().sanitizer is None
    assert System(sanitize=True).sanitizer is not None


# ---------------------------------------------------------------------------
# Fix 1: refresh windows are evaluated at the actual service start
# ---------------------------------------------------------------------------

class TestRefreshOrdering:
    def test_request_queued_into_refresh_window_observes_it(self):
        """A request issued *outside* any refresh window but delayed behind
        a busy bank *into* one must wait for the window's end with its row
        buffer closed (the old code checked only the post-queue time, so
        the refresh never happened)."""
        mc = make_controller(refresh_enabled=True)
        t = mc.config.timings
        period, rfc = t.refi_cycles, t.rfc_cycles
        bank = mc.device.banks[0]
        # Bank 0 (rank 0, stagger 0): second window is [period, period+rfc).
        bank.open_row = 7
        bank.busy_until = period + 100      # busy into the second window
        bank.last_activation = period + 100
        addr = mc.address_of(bank=0, row=7)
        issued = period - 1000              # queue time far outside a window
        result = mc.access(addr, issued=issued)
        # Refresh closed the row (no HIT despite row 7 open) and blocked
        # the bank through the window's end.
        assert result.kind is AccessKind.EMPTY
        assert result.finish == period + rfc + t.empty_cycles

    def test_request_outside_window_unaffected(self):
        mc = make_controller(refresh_enabled=True)
        t = mc.config.timings
        bank = mc.device.banks[0]
        bank.open_row = 7
        busy = t.rfc_cycles + 500           # between windows, bank idle soon
        bank.busy_until = busy
        bank.last_activation = busy
        addr = mc.address_of(bank=0, row=7)
        result = mc.access(addr, issued=busy)
        assert result.kind is AccessKind.HIT

    def test_back_to_back_pattern_straddling_trefi_sanitized(self):
        """Chained accesses crossing a tREFI boundary run violation-free
        under the strict sanitizer (the old ordering bug would trip the
        'serviced inside a refresh window' check)."""
        mc = make_controller(refresh_enabled=True)
        sanitizer = Sanitizer()
        mc.set_observer(sanitizer)
        t = mc.config.timings
        period = t.refi_cycles
        now = period - 1500
        rng = random.Random(7)
        for _ in range(120):
            addr = mc.address_of(bank=rng.randrange(GEOM.num_banks),
                                 row=rng.randrange(64))
            # Issue faster than the banks can service (avg gap 25 cycles vs
            # >=35-cycle access latencies): requests queue behind busy
            # banks, some of them into the banks' refresh windows.
            mc.access(addr, issued=now, requestor=f"req{rng.randrange(3)}")
            now += rng.randrange(10, 40)
        assert now > period  # the pattern did straddle the boundary
        assert sanitizer.ok
        assert sanitizer.checked_events >= 120


# ---------------------------------------------------------------------------
# Fix 2: one open-row-timeout evaluation for classify and access paths
# ---------------------------------------------------------------------------

class TestTimeoutUnification:
    TIMEOUT_TIMINGS = DRAMTimings(row_timeout_ns=100.0)  # 260 cycles

    def _bank(self, open_row, busy_until, last_activation):
        bank = Bank(index=0, timings=self.TIMEOUT_TIMINGS)
        bank.open_row = open_row
        bank.busy_until = busy_until
        bank.last_activation = last_activation
        bank.row_opened_at = max(0, last_activation - 35)
        return bank

    def test_classify_sees_timeout_at_service_start(self):
        """Issued before the timeout but serviced after it: both classify
        and access_raw must say EMPTY (classify used to say HIT)."""
        bank = self._bank(open_row=7, busy_until=300, last_activation=0)
        # service_start = 300 > timeout 260 -> row timed out by then
        assert bank.classify(7, 100) is AccessKind.EMPTY
        kind, service_start, _ = bank.access_raw(7, 100)
        assert service_start == 300
        assert kind is AccessKind.EMPTY

    def test_classify_matches_access_raw_on_random_states(self):
        rng = random.Random(123)
        for _ in range(500):
            open_row = rng.choice([None, 3, 7])
            last = rng.randrange(0, 400)
            bank = self._bank(open_row=open_row,
                              busy_until=last + rng.randrange(0, 400),
                              last_activation=last)
            row = rng.choice([3, 7, 9])
            time = rng.randrange(0, 800)
            predicted = bank.classify(row, time)
            kind, _, _ = bank.access_raw(row, time)
            assert predicted is kind, (
                f"classify={predicted} access={kind} row={row} t={time} "
                f"open={open_row} busy={bank.busy_until}")

    def test_classify_matches_activate(self):
        bank = self._bank(open_row=7, busy_until=300, last_activation=0)
        predicted = bank.classify(7, 100)
        result = bank.activate(7, 100)
        assert predicted is result.kind is AccessKind.EMPTY

    def test_rowclone_uses_service_time_timeout(self):
        bank = self._bank(open_row=7, busy_until=300, last_activation=0)
        access = bank.rowclone_fpm(7, 9, 100)
        # Row 7 timed out by service time 300: the copy sees EMPTY, not HIT.
        assert access.kind is AccessKind.EMPTY


# ---------------------------------------------------------------------------
# Fix 3 companion: tRAS bounds explicit precharges
# ---------------------------------------------------------------------------

class TestExplicitPrechargeTras:
    def test_pre_waits_for_tras_after_activate(self):
        t = DRAMTimings()
        bank = Bank(index=0, timings=t)
        bank.activate(5, 0)                      # row open at service 0
        finish = bank.precharge(bank.busy_until)  # PRE right after tRCD
        # tRCD (35) < tRAS (83): the PRE must wait until tRAS elapses.
        assert finish == t.ras_cycles + t.rp_cycles
        assert bank.open_row is None

    def test_pre_after_tras_unaffected(self):
        t = DRAMTimings()
        bank = Bank(index=0, timings=t)
        bank.activate(5, 0)
        finish = bank.precharge(1000)
        assert finish == 1000 + t.rp_cycles

    def test_crp_auto_precharge_never_violates_tras(self):
        """The closed-row policy's controller-issued PRE after a bare ACT
        is tRAS-clean under the sanitizer."""
        mc = make_controller(row_policy=RowPolicy.CLOSED)
        sanitizer = Sanitizer()
        mc.set_observer(sanitizer)
        now = 0
        for row in (1, 2, 3, 4):
            result = mc.activate(0, row, now)
            now = result.finish + 10
        assert sanitizer.ok
        assert sanitizer.checked_events >= 8  # ACTs + PREs


# ---------------------------------------------------------------------------
# Fix 4: refresh schedule survives clock rebases and snapshots
# ---------------------------------------------------------------------------

class TestRefreshEpoch:
    def test_rebase_preserves_refresh_phase(self):
        mc = make_controller(refresh_enabled=True)
        t = mc.config.timings
        half = t.refi_cycles // 2
        mc.device.banks[0].busy_until = half  # pretend we ran to mid-period
        mc.rebase_time()
        assert mc.device.refresh_epoch == half
        # Rebased t=0 is mid-period: NOT in rank 0's window (without the
        # epoch the schedule would restart at phase 0 = inside the window).
        assert not mc.device.in_refresh_window(0, 0)
        assert mc.device.in_refresh_window(0, t.refi_cycles - half)

    def test_epoch_accumulates_modulo_period(self):
        mc = make_controller(refresh_enabled=True)
        t = mc.config.timings
        for _ in range(3):
            mc.device.banks[0].busy_until = t.refi_cycles + 100
            mc.rebase_time()
        assert mc.device.refresh_epoch == 300 % t.refi_cycles

    def test_snapshot_restore_carries_epoch(self):
        mc = make_controller(refresh_enabled=True)
        mc.device.banks[0].busy_until = 12345
        mc.rebase_time()
        snap = mc.snapshot_state()
        other = make_controller(refresh_enabled=True)
        other.restore_state(snap)
        assert other.device.refresh_epoch == 12345

    def test_old_snapshots_without_epoch_still_restore(self):
        mc = make_controller(refresh_enabled=True)
        snap = mc.snapshot_state()
        del snap["refresh_epoch"]
        mc.restore_state(snap)  # must not raise
        assert mc.device.refresh_epoch == 0

    def test_rebase_noop_when_refresh_disabled(self):
        mc = make_controller()
        mc.device.banks[0].busy_until = 9999
        mc.rebase_time()
        assert mc.device.refresh_epoch == 0


# ---------------------------------------------------------------------------
# Property test: random multi-requestor traffic, sanitized vs not
# ---------------------------------------------------------------------------

def _drive_traffic(system, seed, ops=400):
    """Deterministic random traffic over every request type; returns the
    finish-time trace (the bit-for-bit observable)."""
    rng = random.Random(seed)
    geometry = system.config.geometry
    requestors = ["cpu", "attacker", "victim"]
    trace = []
    now = 0
    for _ in range(ops):
        op = rng.randrange(6)
        who = rng.choice(requestors)
        addr = (rng.randrange(geometry.num_banks) * geometry.row_bytes
                + rng.randrange(4) * 64
                + rng.randrange(32) * geometry.num_banks * geometry.row_bytes)
        if op == 0:
            result = system.hierarchy.access(rng.randrange(2), addr, now,
                                             is_write=rng.random() < 0.3,
                                             requestor=who)
            now = result.finish
        elif op == 1:
            result = system.controller.access(addr, now, requestor=who,
                                              is_write=rng.random() < 0.5)
            now = result.finish
        elif op == 2:
            result = system.controller.activate(
                rng.randrange(geometry.num_banks), rng.randrange(64), now,
                requestor=who)
            now = result.finish
        elif op == 3:
            result = system.hierarchy.clflush(rng.randrange(2), addr, now,
                                              requestor=who)
            now = result.finish
        elif op == 4:
            result = system.pei.execute(addr, now, requestor=who)
            now = result.finish
        else:
            src = system.address_of(0, rng.randrange(32))
            dst = system.address_of(0, 32 + rng.randrange(32))
            results = system.controller.rowclone(
                src, dst, mask=rng.randrange(1, 8), issued=now,
                requestor=who)
            now = max(r.finish for r in results)
        trace.append(now)
        now += rng.randrange(0, 50)
    return trace


@pytest.mark.parametrize("refresh", [False, True])
def test_randomized_traffic_zero_violations_and_bit_identical(refresh):
    config = replace(SystemConfig.paper_default(), refresh_enabled=refresh)
    for seed in (1, 2, 3):
        plain = System(config, sanitize=False)
        checked = System(config, sanitize=True)
        assert checked.sanitizer is not None
        trace_plain = _drive_traffic(plain, seed)
        trace_checked = _drive_traffic(checked, seed)
        # Strict mode would have raised already; assert explicitly anyway.
        assert checked.sanitizer.ok
        assert checked.sanitizer.checked_events > 0
        assert trace_checked == trace_plain


def test_snapshot_restore_equivalence_under_sanitizer():
    """Restore-then-replay equals straight-replay, with the sanitizer
    watching both phases (its monotonicity floors must reset on restore)."""
    config = SystemConfig.paper_default()
    reference = System(config, sanitize=False)
    _drive_traffic(reference, seed=11, ops=150)
    tail_ref = _drive_traffic(reference, seed=12, ops=150)

    checked = System(config, sanitize=True)
    _drive_traffic(checked, seed=11, ops=150)
    snap = checked.snapshot()
    _drive_traffic(checked, seed=99, ops=60)   # diverge...
    checked.restore(snap)                      # ...and rewind
    tail_checked = _drive_traffic(checked, seed=12, ops=150)
    assert checked.sanitizer.ok
    assert tail_checked == tail_ref


def test_batch_vs_loop_equivalence_under_sanitizer():
    config = SystemConfig.paper_default()
    addrs = [((i * 7919) % 4096) * 64 for i in range(300)]

    loop = System(config, sanitize=False)
    now = 0
    for addr in addrs:
        now = loop.hierarchy.access(0, addr, now, requestor="cpu").finish

    batched = System(config, sanitize=True)
    batch_finish = batched.hierarchy.access_batch(0, addrs, 0,
                                                  requestor="cpu")
    assert batched.sanitizer.ok
    assert batch_finish == now
