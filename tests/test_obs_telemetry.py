"""Tests for the fleet telemetry stack (:mod:`repro.obs.telemetry`).

Unit coverage for the event sink, chain verification, and the
:class:`FleetHealth` model runs in-process with pinned clocks; the
integration tests drive real sweeps (pool, serial, and forced
serial-fallback) and the serve scheduler (dedup, worker death) with the
event log on, then assert every executed point left one complete causal
chain — no orphan spans, no duplicate span IDs, retries only behind
explicit markers.
"""

import asyncio
import json
import os
import random
import time

import pytest

from repro.analysis import benchhistory
from repro.exp import WorkerPool, run_sweep
from repro.exp.runner import (
    PoolUnavailableError,
    metrics_path,
    point_slug,
)
from repro.exp.sweep import SweepPoint
from repro.obs import telemetry
from repro.obs import top as obs_top
from repro.serve import ServeScheduler


def tele_point(value=0, delay=0.0):
    if delay:
        time.sleep(delay)
    return {"value": value}


def failing_tele_point(value=0):
    raise ValueError(f"bad point {value}")


def crash_once_point(sentinel):
    """Kills its worker on first run; succeeds on the retry."""
    if not os.path.exists(sentinel):
        open(sentinel, "w").close()
        os._exit(1)
    return {"retried": True}


def _points(values, fn=tele_point, **extra):
    return [SweepPoint("tele", fn, {"value": v, **extra}) for v in values]


@pytest.fixture
def tele_dir(tmp_path, monkeypatch):
    """Event log switched on for this test, sink state isolated."""
    directory = str(tmp_path / "events")
    monkeypatch.setenv(telemetry.ENV_TELEMETRY_DIR, directory)
    telemetry.reset_sink()
    yield directory
    telemetry.reset_sink()


# ---------------------------------------------------------------------------
# Event sink
# ---------------------------------------------------------------------------

class TestEventSink:
    def test_disabled_by_default(self, monkeypatch, tmp_path):
        monkeypatch.delenv(telemetry.ENV_TELEMETRY_DIR, raising=False)
        telemetry.reset_sink()
        assert not telemetry.enabled()
        telemetry.emit("point_queued", span_id="span-x")  # must not raise
        assert list(tmp_path.iterdir()) == []

    def test_emit_roundtrip(self, tele_dir):
        assert telemetry.enabled()
        telemetry.emit("point_queued", run_id="run-a", span_id="span-a",
                       point_slug="p1")
        telemetry.emit("point_committed", run_id="run-a", span_id="span-a",
                       point_slug="p1", elapsed_s=0.5)
        events = telemetry.read_events(tele_dir)
        assert [e["event"] for e in events] == ["point_queued",
                                               "point_committed"]
        assert all(e["pid"] == os.getpid() for e in events)
        assert all(e["run_id"] == "run-a" for e in events)
        assert events[1]["elapsed_s"] == 0.5
        assert events[0]["ts"] <= events[1]["ts"]

    def test_ambient_ids_from_env(self, tele_dir, monkeypatch):
        monkeypatch.setenv(telemetry.ENV_RUN_ID, "run-env")
        monkeypatch.setenv(telemetry.ENV_SPAN_ID, "span-env")
        assert telemetry.current_ids() == ("run-env", "span-env")
        telemetry.emit("point_start")
        (event,) = telemetry.read_events(tele_dir)
        assert event["run_id"] == "run-env"
        assert event["span_id"] == "span-env"

    def test_read_skips_torn_lines(self, tele_dir):
        telemetry.emit("point_queued", span_id="span-ok")
        path = os.path.join(tele_dir, "events-999999.ndjson")
        with open(path, "w") as handle:
            handle.write('{"event":"point_start","span_id":"s2","ts":1}\n')
            handle.write('{"event":"point_end","span_id"')  # torn mid-write
        events = telemetry.read_events(tele_dir)
        assert {e["event"] for e in events} == {"point_queued",
                                               "point_start"}

    def test_ids_are_unique(self):
        assert telemetry.new_run_id() != telemetry.new_run_id()
        assert telemetry.new_span_id().startswith("span-")
        assert telemetry.new_run_id().startswith("run-")


# ---------------------------------------------------------------------------
# Chain verification
# ---------------------------------------------------------------------------

def _chain(span, *names, slug="p"):
    return [{"event": name, "span_id": span, "point_slug": slug, "ts": i}
            for i, name in enumerate(names)]


class TestVerifyChains:
    def test_complete_chain_passes(self):
        events = _chain("s1", "point_queued", "point_dispatched",
                        "point_start", "point_end", "point_committed")
        assert telemetry.verify_chains(events) == []

    def test_orphan_span_flagged(self):
        events = _chain("s1", "point_start", "point_committed")
        assert any("orphan" in p for p in telemetry.verify_chains(events))

    def test_duplicate_queue_flagged(self):
        events = _chain("s1", "point_queued", "point_queued",
                        "point_committed")
        assert any("queued 2 times" in p
                   for p in telemetry.verify_chains(events))

    def test_missing_terminal_flagged(self):
        events = _chain("s1", "point_queued", "point_start")
        assert any("incomplete" in p
                   for p in telemetry.verify_chains(events))

    def test_double_commit_flagged(self):
        events = _chain("s1", "point_queued", "point_committed",
                        "point_committed")
        assert any("2 terminal" in p
                   for p in telemetry.verify_chains(events))

    def test_retry_marker_excuses_repeats(self):
        events = _chain("s1", "point_queued", "point_start",
                        "point_retried", "point_start", "point_committed")
        assert telemetry.verify_chains(events) == []
        # Without the marker, the same double execution is a problem.
        bad = [e for e in events if e["event"] != "point_retried"]
        assert any("without a point_retried" in p
                   for p in telemetry.verify_chains(bad))

    def test_mixed_slugs_flagged(self):
        events = (_chain("s1", "point_queued", slug="a")
                  + _chain("s1", "point_committed", slug="b"))
        assert any("multiple point slugs" in p
                   for p in telemetry.verify_chains(events))

    def test_causal_chains_groups_by_span(self):
        events = (_chain("s1", "point_queued", "point_committed")
                  + _chain("s2", "point_queued")
                  + [{"event": "run_start", "run_id": "r", "ts": 0}])
        chains = telemetry.causal_chains(events)
        assert set(chains) == {"s1", "s2"}
        assert len(chains["s1"]) == 2


# ---------------------------------------------------------------------------
# FleetHealth
# ---------------------------------------------------------------------------

class TestFleetHealth:
    def _warmed(self, **kwargs):
        """A health model with four 1s completions on worker 1."""
        health = telemetry.FleetHealth(straggler_factor=2.0, min_samples=4,
                                       min_seconds=0.5, **kwargs)
        for i in range(4):
            health.record_dispatch(1, f"s{i}", point_slug=f"p{i}",
                                   now=float(i))
            health.record_done(1, f"s{i}", now=float(i) + 1.0)
        return health

    def test_median_warms_up(self):
        health = telemetry.FleetHealth(min_samples=4)
        assert health.median() is None
        assert health.threshold() is None
        assert health.flag_stragglers(now=100.0) == []
        health = self._warmed()
        assert health.median() == pytest.approx(1.0)
        assert health.threshold() == pytest.approx(2.0)

    def test_in_flight_straggler_flagged_once(self):
        health = self._warmed()
        health.record_dispatch(2, "slow", point_slug="pslow",
                               run_id="run-x", now=10.0)
        assert health.flag_stragglers(now=10.5) == []  # under threshold
        (flagged,) = health.flag_stragglers(now=15.0)
        assert flagged["span_id"] == "slow"
        assert flagged["pid"] == 2
        assert flagged["run_id"] == "run-x"
        assert flagged["age_s"] == pytest.approx(5.0)
        assert health.flag_stragglers(now=20.0) == []  # flag-once
        assert health.stragglers_total == 1
        # Completing an already-flagged point must not double-count.
        elapsed, newly = health.record_done(2, "slow", now=20.0)
        assert elapsed == pytest.approx(10.0)
        assert newly is False
        assert health.stragglers_total == 1

    def test_completion_straggler_counted(self):
        health = self._warmed()
        health.record_dispatch(2, "slow", now=10.0)
        elapsed, newly = health.record_done(2, "slow", now=17.0)
        assert newly is True
        assert health.stragglers_total == 1

    def test_snapshot_shape(self):
        health = self._warmed()
        health.record_dispatch(2, "slow", point_slug="pslow", now=10.0)
        snap = health.snapshot(now=11.0)
        assert snap["completed_points"] == 4
        assert snap["median_point_seconds"] == pytest.approx(1.0)
        worker = snap["workers"]["1"]
        assert worker["points"] == 4
        assert worker["points_per_sec"] == pytest.approx(1.0)
        assert worker["in_flight"] is None
        busy = snap["workers"]["2"]
        assert busy["in_flight"] == "pslow"
        assert busy["lease_age_s"] == pytest.approx(1.0)
        (flight,) = snap["in_flight"]
        assert flight["span_id"] == "slow"
        assert json.dumps(snap)  # JSON-able end to end

    def test_failures_tracked(self):
        health = telemetry.FleetHealth()
        health.record_dispatch(1, "s", now=0.0)
        health.record_done(1, "s", ok=False, now=0.5)
        assert health.snapshot(now=1.0)["workers"]["1"]["failures"] == 1


# ---------------------------------------------------------------------------
# Structured logging
# ---------------------------------------------------------------------------

class TestStructuredLog:
    def test_off_by_default(self, monkeypatch, capsys):
        monkeypatch.delenv(telemetry.ENV_LOG, raising=False)
        telemetry.log("error", "test", "should not appear")
        assert capsys.readouterr().err == ""

    def test_threshold_filters(self, monkeypatch, capsys):
        monkeypatch.setenv(telemetry.ENV_LOG, "warning")
        telemetry.log("info", "test", "filtered")
        telemetry.log("error", "test", "kept", detail=7)
        lines = capsys.readouterr().err.strip().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["msg"] == "kept"
        assert record["detail"] == 7
        assert record["level"] == "error"

    def test_one_means_info(self, monkeypatch):
        monkeypatch.setenv(telemetry.ENV_LOG, "1")
        assert telemetry.log_threshold() == 20
        monkeypatch.setenv(telemetry.ENV_LOG, "off")
        assert telemetry.log_threshold() is None

    def test_log_carries_ambient_ids(self, monkeypatch, capsys):
        monkeypatch.setenv(telemetry.ENV_LOG, "debug")
        monkeypatch.setenv(telemetry.ENV_RUN_ID, "run-log")
        telemetry.log("debug", "test", "hello")
        record = json.loads(capsys.readouterr().err)
        assert record["run_id"] == "run-log"


# ---------------------------------------------------------------------------
# Sweep integration: every executed point leaves one complete chain
# ---------------------------------------------------------------------------

def _assert_complete(events, points, outcome, expect_spans=None):
    assert telemetry.verify_chains(events) == []
    chains = telemetry.causal_chains(events)
    expected = len(points) if expect_spans is None else expect_spans
    assert len(chains) == expected  # one span per executed point, no dups
    committed = [e for e in events if e["event"] == "point_committed"]
    assert len(committed) == expected
    assert {e["run_id"] for e in committed} == {outcome.run_id}
    slugs = {e.get("point_slug") for e in committed}
    assert slugs == {point_slug(p) for p in points}


class TestSweepChains:
    def test_pool_sweep_complete_chains(self, tele_dir):
        rng = random.Random(20260808)
        points = _points(range(6), delay=rng.uniform(0.0, 0.01))
        outcome = run_sweep(points, jobs=3)
        assert outcome.run_id
        assert [r["value"] for r in outcome.results] == list(range(6))
        events = telemetry.read_events(tele_dir)
        _assert_complete(events, points, outcome)
        names = {e["event"] for e in events}
        assert {"run_start", "run_end", "point_queued", "point_dispatched",
                "point_start", "point_end"} <= names
        if outcome.parallel:
            # Worker-side records really came from other processes.
            starts = [e for e in events if e["event"] == "point_start"]
            assert any(e["pid"] != os.getpid() for e in starts)

    def test_serial_sweep_complete_chains(self, tele_dir):
        points = _points(range(4))
        outcome = run_sweep(points, jobs=1)
        assert not outcome.parallel
        events = telemetry.read_events(tele_dir)
        _assert_complete(events, points, outcome)
        # Serial: every record from this process.
        assert {e["pid"] for e in events} == {os.getpid()}

    def test_pool_fallback_marks_retries(self, tele_dir, monkeypatch):
        from repro.exp import runner

        def refuse(*args, **kwargs):
            raise PoolUnavailableError("forced by test")

        monkeypatch.setattr(runner, "_run_parallel", refuse)
        points = _points(range(4))
        outcome = run_sweep(points, jobs=4)
        assert outcome.fallback_reason
        assert [r["value"] for r in outcome.results] == list(range(4))
        events = telemetry.read_events(tele_dir)
        _assert_complete(events, points, outcome)
        retried = [e for e in events if e["event"] == "point_retried"]
        assert len(retried) == len(points)
        assert all(e["reason"] == "pool_fallback" for e in retried)

    def test_failed_point_gets_failed_terminal(self, tele_dir):
        points = _points([7], fn=failing_tele_point)
        with pytest.raises(ValueError, match="bad point 7"):
            run_sweep(points, jobs=1)
        events = telemetry.read_events(tele_dir)
        assert telemetry.verify_chains(events) == []
        (failed,) = [e for e in events if e["event"] == "point_failed"]
        assert "ValueError" in failed["error"]

    def test_cached_points_skip_spans(self, tele_dir, tmp_path):
        from repro.exp import ResultCache

        cache = ResultCache(str(tmp_path / "cache"))
        points = _points(range(3))
        first = run_sweep(points, jobs=1, cache=cache)
        second = run_sweep(points, jobs=1, cache=cache)
        assert second.cache_hits == 3
        events = telemetry.read_events(tele_dir)
        cached = [e for e in events if e["event"] == "point_cached"]
        assert len(cached) == 3
        assert {e["run_id"] for e in cached} == {second.run_id}
        # Only the first sweep's points have execution spans.
        _assert_complete(
            [e for e in events if e.get("run_id") != second.run_id],
            points, first)

    def test_run_id_minted_even_with_log_off(self, monkeypatch):
        monkeypatch.delenv(telemetry.ENV_TELEMETRY_DIR, raising=False)
        telemetry.reset_sink()
        outcome = run_sweep(_points([1]), jobs=1)
        assert outcome.run_id and outcome.run_id.startswith("run-")
        assert os.environ.get(telemetry.ENV_RUN_ID) is None  # restored


# ---------------------------------------------------------------------------
# Artifact stamping: traces and metrics JSONs join the event log
# ---------------------------------------------------------------------------

class TestArtifactStamping:
    def test_metrics_and_trace_carry_provenance(self, tele_dir, tmp_path):
        from repro.obs import summarize_chrome_trace

        trace_dir = str(tmp_path / "traces")
        metrics_dir = str(tmp_path / "metrics")
        points = _points([5])
        outcome = run_sweep(points, jobs=1, trace_dir=trace_dir,
                            metrics_dir=metrics_dir)
        with open(metrics_path(metrics_dir, points[0])) as handle:
            metrics = json.load(handle)
        assert metrics["run_id"] == outcome.run_id
        assert metrics["pid"] == os.getpid()
        assert metrics["point_slug"] == point_slug(points[0])
        events = telemetry.read_events(tele_dir)
        (queued,) = [e for e in events if e["event"] == "point_queued"]
        assert metrics["span_id"] == queued["span_id"]
        trace_file = os.path.join(trace_dir,
                                  f"{point_slug(points[0])}.trace.json")
        with open(trace_file) as handle:
            other = json.load(handle)["otherData"]
        assert other["run_id"] == outcome.run_id
        assert other["span_id"] == queued["span_id"]
        summary = summarize_chrome_trace(trace_file)
        assert summary["provenance"]["run_id"] == outcome.run_id


# ---------------------------------------------------------------------------
# Serve scheduler: dedup chains, worker death, health endpoint
# ---------------------------------------------------------------------------

def _run(coro):
    return asyncio.run(coro)


def _pool_or_skip():
    pool = WorkerPool()
    try:
        pool.ensure(1)
    except (OSError, PermissionError, RuntimeError, ImportError) as exc:
        pool.shutdown()
        pytest.skip(f"worker processes unavailable: {exc}")
    return pool


class TestSchedulerChains:
    def test_dedup_chains_into_owner_span(self, tele_dir):
        """Two clients submitting the same point while it is in flight
        share one execution span; the duplicate's run chains in through a
        point_deduped record naming the owner."""

        async def main():
            sched = ServeScheduler(jobs=1, use_pool=False)
            await sched.start()
            job_a = await sched.submit(
                "alice", _points([3], delay=0.05))
            job_b = await sched.submit("bob", _points([3], delay=0.05))
            await asyncio.wait_for(job_a.done.wait(), timeout=30)
            await asyncio.wait_for(job_b.done.wait(), timeout=30)
            await sched.stop()
            return job_a, job_b

        job_a, job_b = _run(main())
        assert job_a.ok and job_b.ok
        assert job_a.run_id != job_b.run_id
        events = telemetry.read_events(tele_dir)
        assert telemetry.verify_chains(events) == []
        chains = telemetry.causal_chains(events)
        assert len(chains) == 1  # one execution span for both jobs
        (deduped,) = [e for e in events if e["event"] == "point_deduped"]
        (span_id,) = chains
        assert deduped["span_id"] == span_id
        assert deduped["run_id"] == job_b.run_id
        assert deduped["owner_run_id"] == job_a.run_id
        committed = [e for e in events if e["event"] == "point_committed"]
        assert len(committed) == 1  # deduped, not re-executed

    def test_worker_death_retry_single_chain(self, tele_dir, tmp_path):
        pool = _pool_or_skip()
        sentinel = str(tmp_path / "died-once")

        async def main():
            sched = ServeScheduler(jobs=1, pool=pool, use_pool=True,
                                   idle_workers=0)
            await sched.start()
            job = await sched.submit(
                "c", [SweepPoint("tele", crash_once_point,
                                 {"sentinel": sentinel})])
            await asyncio.wait_for(job.done.wait(), timeout=60)
            await sched.stop()
            return job

        try:
            job = _run(main())
        finally:
            pool.shutdown()
        assert job.ok and job.results == [{"retried": True}]
        events = telemetry.read_events(tele_dir)
        assert telemetry.verify_chains(events) == []
        retried = [e for e in events if e["event"] == "point_retried"]
        assert retried and retried[0]["reason"] == "worker_died"
        dispatched = [e for e in events
                      if e["event"] == "point_dispatched"]
        assert len(dispatched) >= 2  # original dispatch + the retry
        assert len({e["worker_pid"] for e in dispatched}) == 2

    def test_cancelled_points_get_terminal(self, tele_dir):
        async def main():
            sched = ServeScheduler(jobs=1, use_pool=False)
            # No dispatcher yet: the point stays queued, then dies with
            # its client.
            doomed = await sched.submit("victim", _points([2]))
            assert sched.cancel_client("victim") == 1
            await sched.start()
            await sched.stop()
            return doomed

        doomed = _run(main())
        assert doomed.cancelled
        events = telemetry.read_events(tele_dir)
        cancelled = [e for e in events if e["event"] == "point_cancelled"]
        assert cancelled
        assert cancelled[0]["reason"] == "client_disconnected"
        assert telemetry.verify_chains(events) == []

    def test_stats_carry_health_snapshot(self, tele_dir):
        async def main():
            sched = ServeScheduler(jobs=2, use_pool=False)
            await sched.start()
            job = await sched.submit("c", _points([1, 2]))
            await asyncio.wait_for(job.done.wait(), timeout=30)
            stats = sched.stats()
            await sched.stop()
            return stats

        stats = _run(main())
        assert stats["clients_queued"] == {}
        health = stats["workers"]
        assert health["completed_points"] == 2
        assert health["stragglers_total"] == 0
        assert os.getpid() in {int(pid) for pid in health["workers"]}

    def test_straggler_flagged_in_log_and_stats(self, tele_dir):
        """An injected sleep point crossing the threshold shows up both
        as a point_straggler event and in the metrics-endpoint health
        snapshot (polling triggers the in-flight scan)."""

        async def main():
            sched = ServeScheduler(jobs=1, use_pool=False,
                                   straggler_factor=1.5,
                                   straggler_min_seconds=0.05)
            await sched.start()
            warmup = await sched.submit("c", _points(range(4)))
            await asyncio.wait_for(warmup.done.wait(), timeout=30)
            slow = await sched.submit("c", _points([9], delay=0.6))
            flagged = None
            for _ in range(200):
                await asyncio.sleep(0.01)
                snap = sched.stats()["workers"]
                if snap["stragglers_total"] >= 1:
                    flagged = snap
                    break
            await asyncio.wait_for(slow.done.wait(), timeout=30)
            await sched.stop()
            return flagged

        flagged = _run(main())
        assert flagged is not None, "straggler never flagged in stats"
        assert flagged["stragglers_total"] >= 1
        events = telemetry.read_events(tele_dir)
        straggler = [e for e in events if e["event"] == "point_straggler"]
        assert straggler
        assert telemetry.verify_chains(events) == []


# ---------------------------------------------------------------------------
# repro top rendering
# ---------------------------------------------------------------------------

class TestTopRendering:
    def test_metrics_frame_renders_payload(self):
        payload = {"stats": {
            "max_jobs": 4, "queued_points": 1, "running_points": 2,
            "jobs_total": 3, "jobs_done": 1, "pool_workers": 2,
            "clients_running": {"alice": 2}, "clients_queued": {"bob": 1},
            "counters": {"serve.points.queued": 8,
                         "serve.points.deduped": 2,
                         "serve.points.cache_hits": 0},
            "workers": {
                "completed_points": 6, "median_point_seconds": 0.5,
                "straggler_threshold_seconds": 2.0, "stragglers_total": 1,
                "workers": {"41": {
                    "points": 6, "failures": 0, "busy_seconds": 3.0,
                    "points_per_sec": 2.0, "heartbeat_age_s": 0.1,
                    "in_flight": "slowpoint", "lease_age_s": 2.5,
                    "straggler": True}},
                "in_flight": [{"span_id": "s9", "worker_pid": 41,
                               "point_slug": "slowpoint", "age_s": 2.5,
                               "straggler": True}]}}}
        frame = obs_top.render_metrics_frame(payload, source="test")
        assert "alice" in frame and "bob" in frame
        assert "STRAGGLER" in frame
        assert "dedup 20.0%" in frame
        assert "slowpoint" in frame
        assert "41" in frame

    def test_dedup_ratio(self):
        assert obs_top.dedup_ratio({}) is None
        counters = {"serve.points.queued": 6, "serve.points.deduped": 2,
                    "serve.points.cache_hits": 2}
        assert obs_top.dedup_ratio(counters) == pytest.approx(0.2)

    def test_fleet_state_reconstruction(self):
        events = [
            {"event": "run_start", "run_id": "r1", "ts": 0.0},
            {"event": "point_queued", "run_id": "r1", "span_id": "s1",
             "point_slug": "a", "client": "alice", "ts": 0.1},
            {"event": "point_dispatched", "run_id": "r1", "span_id": "s1",
             "point_slug": "a", "worker_pid": 7, "ts": 0.2},
            {"event": "point_end", "span_id": "s1", "elapsed_s": 0.3,
             "ts": 0.5},
            {"event": "point_committed", "run_id": "r1", "span_id": "s1",
             "point_slug": "a", "ts": 0.6},
            {"event": "point_queued", "run_id": "r1", "span_id": "s2",
             "point_slug": "b", "client": "alice", "ts": 0.7},
            {"event": "point_dispatched", "run_id": "r1", "span_id": "s2",
             "point_slug": "b", "worker_pid": 8, "ts": 0.8},
            {"event": "point_deduped", "run_id": "r2", "span_id": "s1",
             "ts": 0.9},
        ]
        state = obs_top.fleet_state(events, now=1.8)
        assert state["runs"] == 2
        assert state["spans"] == 2
        assert state["done_spans"] == 1
        assert state["clients"]["alice"] == {"queued": 2, "done": 1}
        assert state["counters"]["serve.points.deduped"] == 1
        (flight,) = state["in_flight"]
        assert flight["span_id"] == "s2"
        assert flight["age_s"] == pytest.approx(1.0)
        assert state["workers"]["7"]["points"] == 1
        frame = obs_top.render_state_frame(state, source="unit")
        assert "alice" in frame and "in flight 1" in frame

    def test_frame_from_real_sweep(self, tele_dir):
        outcome = run_sweep(_points(range(3)), jobs=1)
        frame = obs_top.frame_from_dir(tele_dir)
        assert "points 3/3 done" in frame
        assert "runs 1" in frame
        assert outcome.run_id  # the sweep really ran under telemetry

    def test_frame_from_empty_dir(self, tmp_path):
        frame = obs_top.frame_from_dir(str(tmp_path))
        assert "points 0/0 done" in frame


# ---------------------------------------------------------------------------
# Bench history
# ---------------------------------------------------------------------------

class TestBenchHistory:
    def _seed(self, tmp_path):
        (tmp_path / "BENCH_PR1.json").write_text(json.dumps(
            {"simulator": {"ops_per_sec": 100}, "suite_seconds": 10.0}))
        (tmp_path / "BENCH_PR2.json").write_text(json.dumps(
            {"simulator": {"ops_per_sec": 120}, "suite_seconds": 8.0,
             "snapshot": {"speedup": 5.0}}))
        (tmp_path / "not-a-bench.json").write_text("{}")
        (tmp_path / "BENCH_PR3.json").write_text("not json")
        return str(tmp_path)

    def test_collect_history(self, tmp_path):
        history = benchhistory.collect_history(self._seed(tmp_path))
        assert history["columns"] == ["PR1", "PR2"]
        by_name = {m["name"]: m for m in history["metrics"]}
        sim = by_name["simulator.ops_per_sec"]
        assert sim["series"] == [100.0, 120.0]
        assert sim["delta_pct"] == pytest.approx(20.0)
        # suite_seconds dropped 10 -> 8: improvement, so positive delta.
        assert by_name["suite_seconds"]["delta_pct"] == pytest.approx(20.0)
        snap = by_name["snapshot.restore_speedup"]
        assert snap["series"] == [None, 5.0]
        assert snap["delta_pct"] is None
        assert "serve.points_per_sec" not in by_name  # absent everywhere

    def test_fresh_column(self, tmp_path):
        history = benchhistory.collect_history(
            self._seed(tmp_path),
            fresh={"simulator.ops_per_sec": 60.0})
        assert history["columns"][-1] == "fresh"
        by_name = {m["name"]: m for m in history["metrics"]}
        assert by_name["simulator.ops_per_sec"]["delta_pct"] == (
            pytest.approx(-50.0))

    def test_render_ascii_and_markdown(self, tmp_path):
        history = benchhistory.collect_history(self._seed(tmp_path))
        ascii_table = benchhistory.render_history(history)
        assert "PR1" in ascii_table and "simulator.ops_per_sec" in ascii_table
        markdown = benchhistory.render_history_markdown(history)
        assert markdown.startswith("# Benchmark history")
        assert "| simulator.ops_per_sec |" in markdown

    def test_trajectory_line(self, tmp_path):
        root = self._seed(tmp_path)
        line = benchhistory.format_trajectory(root, "simulator.ops_per_sec",
                                              fresh=90.0)
        assert line == ("simulator.ops_per_sec: PR1 100.0 -> PR2 120.0 "
                        "(fresh 90.00)")
        assert "not a tracked metric" in benchhistory.format_trajectory(
            root, "nope")
        assert "no committed history" in benchhistory.format_trajectory(
            root, "telemetry.warm_overhead_pct")

    def test_empty_root(self, tmp_path):
        history = benchhistory.collect_history(str(tmp_path / "missing"))
        assert history == {"columns": [], "metrics": []}
        assert "no BENCH_PR" in benchhistory.render_history(history)

    def test_repo_snapshots_parse(self):
        """The committed records at the repo root actually feed the
        trend table (guards the metric paths against schema drift)."""
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        history = benchhistory.collect_history(root)
        by_name = {m["name"]: m for m in history["metrics"]}
        assert "simulator.ops_per_sec" in by_name
        assert any(v for v in by_name["simulator.ops_per_sec"]["series"])
