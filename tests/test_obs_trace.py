"""Tests for the structured event-trace layer (``repro.obs``):
recording, per-requestor metrics, Chrome-trace export, process-global
installation, sweep-runner fan-out, and the ``repro trace`` CLI."""

import json
import os

import pytest

from repro import obs
from repro.cli import main
from repro.dram import (DRAMGeometry, MemoryController,
                        MemoryControllerConfig)
from repro.exp import run_sweep, sweep_points
from repro.obs import MultiObserver, TraceEvent, Tracer
from repro.sim import Scheduler, Semaphore
from repro.system import System

GEOM = DRAMGeometry(ranks=1, banks_per_rank=4, rows_per_bank=256,
                    row_bytes=2048)


def make_controller(**kwargs):
    defaults = dict(geometry=GEOM)
    defaults.update(kwargs)
    return MemoryController(MemoryControllerConfig(**defaults))


def dram_point(rows):
    """Module-level (picklable) sweep point that touches DRAM, so traced
    sweep runs produce non-empty per-point traces."""
    mc = MemoryController(MemoryControllerConfig(geometry=GEOM))
    now = 0
    for row in range(rows):
        now = mc.access(mc.address_of(bank=0, row=row), now).finish
    return {"rows": rows, "finish": now}


# ---------------------------------------------------------------------------
# Event capture
# ---------------------------------------------------------------------------

class TestTracerCapture:
    def test_dram_accesses_recorded_with_timing(self):
        mc = make_controller()
        tracer = Tracer()
        mc.set_observer(tracer)
        addr = mc.address_of(bank=1, row=7)
        first = mc.access(addr, 0, requestor="attacker")
        mc.access(addr, first.finish, requestor="attacker")  # row hit
        assert tracer.counts() == {"RD": 2}
        empty, hit = tracer.events
        assert empty.cat == "dram" and empty.tid == "bank 1"
        assert empty.args["kind"] == "empty"
        assert empty.args["requestor"] == "attacker"
        assert hit.args["kind"] == "hit"
        assert hit.dur == mc.config.timings.hit_cycles
        assert empty.ts + empty.dur == first.finish

    def test_activate_rowclone_and_refresh_recorded(self):
        mc = make_controller(refresh_enabled=True)
        tracer = Tracer()
        mc.set_observer(tracer)
        mc.activate(2, 9, 0, requestor="sender")
        mc.rowclone(mc.address_of(bank=0, row=1),
                    mc.address_of(bank=0, row=2), mask=0b11, issued=200)
        # Issue into bank 0's refresh window (rank 0 staggers at phase 0).
        mc.access(mc.address_of(bank=0, row=1), 5_000_000)
        counts = tracer.counts()
        assert counts["ACT"] == 1
        assert counts["RowClone"] == 2
        assert counts.get("REF", 0) >= 1

    def test_queue_delay_recorded(self):
        mc = make_controller()
        tracer = Tracer()
        mc.set_observer(tracer)
        addr = mc.address_of(bank=0, row=3)
        mc.access(addr, 0)
        mc.access(addr, 0)  # queues behind the first
        assert tracer.events[1].args["queue_delay"] > 0

    def test_multi_observer_fans_out(self):
        mc = make_controller()
        first, second = Tracer(), Tracer()
        mc.set_observer(MultiObserver([first, second]))
        mc.access(mc.address_of(bank=0, row=1), 0)
        assert len(first.events) == len(second.events) == 1

    def test_clear(self):
        tracer = Tracer()
        tracer.events.append(TraceEvent("RD", "dram", 0, 5, "bank 0"))
        tracer.clear()
        assert len(tracer) == 0

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ValueError):
            Tracer(cpu_ghz=0)


def test_system_events_reach_tracer():
    tracer = Tracer()
    system = System(observer=tracer)
    addr = system.address_of(0, 5)
    result = system.hierarchy.access(0, addr, 0, requestor="victim")
    system.hierarchy.clflush(0, addr, result.finish, requestor="victim")
    system.pei.execute(addr, 10_000, requestor="pei")
    counts = tracer.counts()
    assert counts.get("miss", 0) >= 1       # cold access missed the caches
    assert counts.get("clflush", 0) == 1
    assert counts.get("PEI", 0) == 1


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------

class TestPerRequestor:
    def test_aggregates_by_requestor(self):
        mc = make_controller()
        tracer = Tracer()
        mc.set_observer(tracer)
        a1 = mc.access(mc.address_of(bank=0, row=1), 0, requestor="a")
        mc.access(mc.address_of(bank=0, row=1), a1.finish, requestor="a")
        mc.access(mc.address_of(bank=1, row=2), 0, requestor="b")
        metrics = tracer.per_requestor()
        assert metrics["a"]["operations"] == 2
        assert metrics["a"]["empties"] == 1
        assert metrics["a"]["hits"] == 1
        assert metrics["b"]["operations"] == 1
        t = mc.config.timings
        assert metrics["a"]["busy_cycles"] == t.empty_cycles + t.hit_cycles

    def test_non_dram_events_excluded(self):
        tracer = Tracer()
        tracer.on_cache_miss(0, 0x100, 0, 50, "cpu")
        assert tracer.per_requestor() == {}


# ---------------------------------------------------------------------------
# Chrome-trace export
# ---------------------------------------------------------------------------

class TestChromeExport:
    def _traced(self):
        mc = make_controller()
        tracer = Tracer()
        mc.set_observer(tracer)
        addr = mc.address_of(bank=0, row=1)
        mc.access(addr, 0)
        tracer.on_thread_resume("receiver", 500, 1)  # an instant event
        return tracer

    def test_spans_and_instants(self):
        doc = self._traced().to_chrome()
        events = doc["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert spans and instants
        for span in spans:
            assert span["dur"] > 0
        for instant in instants:
            assert instant["s"] == "t"
            assert "dur" not in instant
        for event in events:
            assert {"name", "cat", "pid", "tid", "ts"} <= set(event)

    def test_categories_map_to_pids(self):
        doc = self._traced().to_chrome()
        pids = {e["cat"]: e["pid"] for e in doc["traceEvents"]}
        assert pids["dram"] == 1 and pids["sched"] == 4

    def test_timestamps_scale_to_microseconds(self):
        tracer = Tracer(cpu_ghz=2.0)
        tracer.events.append(TraceEvent("RD", "dram", 2000, 1000, "bank 0"))
        record = tracer.to_chrome()["traceEvents"][0]
        assert record["ts"] == pytest.approx(1.0)   # 2000 cyc @2GHz = 1 us
        assert record["dur"] == pytest.approx(0.5)

    def test_write_chrome_round_trips(self, tmp_path):
        path = tmp_path / "out.trace.json"
        written = self._traced().write_chrome(str(path))
        assert written == str(path)
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        assert doc["traceEvents"]
        assert doc["otherData"]["event_counts"]["RD"] == 1


# ---------------------------------------------------------------------------
# Process-global installation
# ---------------------------------------------------------------------------

class TestGlobalInstall:
    def test_install_uninstall(self):
        tracer = Tracer()
        assert obs.current_observer() is None
        obs.install(tracer)
        try:
            assert obs.current_observer() is tracer
        finally:
            obs.uninstall()
        assert obs.current_observer() is None

    def test_components_pick_up_global_observer(self):
        tracer = Tracer()
        obs.install(tracer)
        try:
            mc = make_controller()
            mc.access(mc.address_of(bank=0, row=1), 0)
        finally:
            obs.uninstall()
        assert tracer.counts() == {"RD": 1}

    def test_scheduler_emits_block_and_resume(self):
        tracer = Tracer()
        obs.install(tracer)
        try:
            sched = Scheduler()
            sem = Semaphore()

            def waiter(ctx):
                yield sem.acquire()

            def poster(ctx):
                ctx.advance(50)
                yield None
                yield sem.release()

            sched.spawn(waiter, name="waiter")
            sched.spawn(poster, name="poster")
            sched.run()
        finally:
            obs.uninstall()
        sched_events = [(e.name, e.tid) for e in tracer.events
                        if e.cat == "sched"]
        assert ("block", "waiter") in sched_events
        assert ("resume", "waiter") in sched_events


# ---------------------------------------------------------------------------
# Sweep-runner fan-out
# ---------------------------------------------------------------------------

class TestRunnerTracing:
    def test_trace_dir_writes_one_file_per_point(self, tmp_path):
        points = sweep_points("trace-exp", dram_point, "rows", [3, 5])
        outcome = run_sweep(points, jobs=1, trace_dir=str(tmp_path))
        assert [p["rows"] for p in outcome] == [3, 5]
        files = sorted(tmp_path.glob("*.trace.json"))
        assert len(files) == 2
        for path in files:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
            # Each point's DRAM traffic landed in its own trace.
            assert doc["otherData"]["event_counts"]["RD"] >= 3
        # The env handshake and the global observer are both restored.
        assert os.environ.get("REPRO_TRACE_DIR") is None
        assert obs.current_observer() is None

    def test_parallel_results_identical_to_serial(self, tmp_path):
        points = sweep_points("trace-exp", dram_point, "rows", [2, 4, 6])
        serial = run_sweep(points, jobs=1).results
        traced = run_sweep(points, jobs=2,
                           trace_dir=str(tmp_path / "traces")).results
        assert traced == serial
        assert len(list((tmp_path / "traces").glob("*.trace.json"))) == 3

    def test_no_trace_dir_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        points = sweep_points("trace-exp", dram_point, "rows", [2])
        run_sweep(points, jobs=1)
        assert list(tmp_path.glob("*.trace.json")) == []


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_trace_writes_valid_chrome_json(tmp_path, capsys):
    out = tmp_path / "fig7.trace.json"
    rc = main(["trace", "fig7", "--bits", "16", "--out", str(out),
               "--sanitize"])
    assert rc == 0
    with open(out, encoding="utf-8") as fh:
        doc = json.load(fh)
    assert doc["traceEvents"]
    kinds = {e["ph"] for e in doc["traceEvents"]}
    assert kinds <= {"X", "i"}
    text = capsys.readouterr().out
    assert "0 violations" in text
    assert str(out) in text
    # The CLI restored the global-observer slot on the way out.
    assert obs.current_observer() is None
