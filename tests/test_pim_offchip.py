"""Unit tests for the off-chip (Hermes-style) predictor."""

import pytest

from repro.pim import OffChipPredictor, OffChipPredictorConfig


def test_untrained_predictor_biased_by_llc_size():
    """Larger LLC => stronger on-chip prior (the §5.3 observation)."""
    small = OffChipPredictor(OffChipPredictorConfig(), llc_size_mb=8.0)
    large = OffChipPredictor(OffChipPredictorConfig(), llc_size_mb=64.0)
    addr = 0x12345
    # At base size the bias is zero -> borderline; at 64 MB it is negative.
    assert small._bias() == 0.0
    assert large._bias() < 0.0


def _no_pressure():
    """Perceptron-only config: opportunistic caching disabled."""
    return OffChipPredictorConfig(cache_pressure_base=0.0,
                                  cache_pressure_per_doubling=0.0)


def test_training_toward_offchip_flips_prediction():
    predictor = OffChipPredictor(_no_pressure(), llc_size_mb=64.0)
    addr = 0x40000
    assert not predictor.predict_offchip(addr)  # on-chip prior wins
    for _ in range(16):
        predictor.train(addr, was_offchip=True)
    assert predictor.predict_offchip(addr)


def test_cache_pressure_grows_with_llc_size():
    """§5.3: a larger LLC makes the predictor cache more data."""
    small = OffChipPredictor(OffChipPredictorConfig(), llc_size_mb=8.0)
    large = OffChipPredictor(OffChipPredictorConfig(), llc_size_mb=64.0)
    assert large.cache_pressure() > small.cache_pressure()


def test_cache_pressure_forces_onchip_predictions():
    config = OffChipPredictorConfig(cache_pressure_base=1.0)
    predictor = OffChipPredictor(config, llc_size_mb=8.0)
    predictor.train(0x1000, was_offchip=True)
    assert not predictor.predict_offchip(0x1000)


def test_training_toward_onchip_suppresses_offchip():
    predictor = OffChipPredictor(_no_pressure(), llc_size_mb=8.0)
    addr = 0x40000
    for _ in range(16):
        predictor.train(addr, was_offchip=False)
    assert not predictor.predict_offchip(addr)


def test_weights_saturate():
    config = OffChipPredictorConfig(weight_limit=4)
    predictor = OffChipPredictor(config, llc_size_mb=8.0)
    addr = 0x40000
    for _ in range(100):
        predictor.train(addr, was_offchip=True)
    assert max(predictor._page_weights.values()) <= 4


def test_offchip_fraction_statistic():
    predictor = OffChipPredictor(_no_pressure(), llc_size_mb=8.0)
    for i in range(8):
        predictor.train(0x1000 * i, was_offchip=True)
    for i in range(8):
        predictor.predict_offchip(0x1000 * i)
    assert predictor.offchip_fraction == 1.0


def test_invalid_configs_rejected():
    with pytest.raises(ValueError):
        OffChipPredictorConfig(table_entries=0)
    with pytest.raises(ValueError):
        OffChipPredictor(OffChipPredictorConfig(), llc_size_mb=0)
