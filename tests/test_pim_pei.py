"""Unit tests for the PEI engine and the PMU locality monitor."""

import pytest

from repro.cache import CacheHierarchy, HierarchyConfig
from repro.dram import AccessKind, DRAMGeometry, MemoryController, MemoryControllerConfig
from repro.pim import ExecutionSite, LocalityMonitor, PEIConfig, PEIEngine

GEOM = DRAMGeometry(ranks=1, banks_per_rank=16, rows_per_bank=4096)


def make_engine(**pei_kwargs):
    controller = MemoryController(MemoryControllerConfig(geometry=GEOM))
    hierarchy = CacheHierarchy(HierarchyConfig(num_cores=1, llc_size_mb=2.0,
                                               prefetchers_enabled=False),
                               controller)
    return PEIEngine(PEIConfig(**pei_kwargs), controller, hierarchy)


# ---------------------------------------------------------------------------
# Locality monitor
# ---------------------------------------------------------------------------

def test_monitor_first_touch_goes_to_memory():
    monitor = LocalityMonitor(PEIConfig())
    assert monitor.observe(0x1000) is False


def test_monitor_ignore_flag_skips_first_hit():
    """[93]: the first hit on a fresh entry is ignored — the bypass
    IMPACT-PnM relies on (§4.1)."""
    monitor = LocalityMonitor(PEIConfig(ignore_first_hit=True,
                                        locality_threshold=1))
    assert monitor.observe(0x1000) is False  # allocate
    assert monitor.observe(0x1000) is False  # first hit ignored
    assert monitor.observe(0x1000) is True   # now high locality


def test_monitor_without_ignore_flag_detects_sooner():
    monitor = LocalityMonitor(PEIConfig(ignore_first_hit=False,
                                        locality_threshold=1))
    assert monitor.observe(0x1000) is False
    assert monitor.observe(0x1000) is True


def test_monitor_attacker_set_ignore_re_arms_bypass():
    """The attacker can keep re-setting the ignore flag to stay on the
    memory path with a small address range (§4.1 step 1)."""
    monitor = LocalityMonitor(PEIConfig(ignore_first_hit=True,
                                        locality_threshold=1))
    monitor.observe(0x1000)
    for _ in range(10):
        assert monitor.observe(0x1000, set_ignore=True) is False


def test_monitor_eviction_forgets_cold_entries():
    config = PEIConfig(monitor_entries=4, monitor_ways=1,
                       locality_threshold=1, ignore_first_hit=False)
    monitor = LocalityMonitor(config, line_bytes=64)
    # Entries are direct-mapped on block % 4: blocks 0 and 4 collide.
    monitor.observe(0 * 64)
    monitor.observe(4 * 64)  # evicts block 0
    assert monitor.observe(0 * 64) is False  # fresh allocation again


def test_monitor_distinct_blocks_never_high_locality():
    monitor = LocalityMonitor(PEIConfig())
    for i in range(64):
        assert monitor.observe(i * 64) is False


# ---------------------------------------------------------------------------
# PEI engine
# ---------------------------------------------------------------------------

def test_memory_execution_reaches_dram_directly():
    engine = make_engine()
    controller = engine.controller
    addr = controller.address_of(bank=3, row=17)
    result = engine.execute(addr, issued=0)
    assert result.site is ExecutionSite.MEMORY
    assert result.bank == 3
    assert controller.open_rows()[3] == 17
    # The cache hierarchy saw nothing.
    assert engine.hierarchy.stats.demand_accesses == 0


def test_memory_execution_latency_breakdown():
    engine = make_engine(issue_cycles=2, network_cycles=25, pcu_op_cycles=3)
    controller = engine.controller
    addr = controller.address_of(bank=0, row=1)
    t = controller.config.timings
    result = engine.execute(addr, issued=0)
    expected = 2 + 25 + 4 + t.empty_cycles + 3 + 25  # queue_cycles = 4
    assert result.latency == expected


def test_pei_hit_vs_conflict_straddles_threshold():
    """Fig. 7(a): hits decode below 150 cycles, conflicts above."""
    engine = make_engine()
    controller = engine.controller
    row_a = controller.address_of(bank=0, row=10)
    row_b = controller.address_of(bank=0, row=20)
    engine.execute(row_a, issued=0)
    hit = engine.execute(row_a, issued=10_000)
    assert hit.kind is AccessKind.HIT
    assert hit.latency < 150
    conflict = engine.execute(row_b, issued=20_000)
    assert conflict.kind is AccessKind.CONFLICT
    assert conflict.latency > 150


def test_high_locality_pei_executes_on_host():
    engine = make_engine(locality_threshold=1, ignore_first_hit=False)
    addr = engine.controller.address_of(bank=0, row=1)
    engine.execute(addr, issued=0)
    result = engine.execute(addr, issued=10_000)
    assert result.site is ExecutionSite.HOST
    assert engine.hierarchy.stats.demand_accesses == 1


def test_host_execution_hits_cache_and_hides_row_state():
    """Once on the host path, a warm PEI never reaches DRAM — the attack
    signal disappears, which is why the bypass matters."""
    engine = make_engine(locality_threshold=1, ignore_first_hit=False)
    addr = engine.controller.address_of(bank=0, row=1)
    engine.execute(addr, issued=0)          # memory; fills nothing
    engine.execute(addr, issued=10_000)     # host; misses, fills caches
    result = engine.execute(addr, issued=20_000)
    assert result.site is ExecutionSite.HOST
    assert result.kind is None  # served from cache: no DRAM evidence


def test_force_site_overrides_monitor():
    engine = make_engine(locality_threshold=1, ignore_first_hit=False)
    addr = engine.controller.address_of(bank=0, row=1)
    result = engine.execute(addr, issued=0, force_site=ExecutionSite.HOST)
    assert result.site is ExecutionSite.HOST


def test_execute_parallel_overlaps_bank_operations():
    """§4.3: the attacker probes many banks with back-to-back PEIs; DRAM
    operations overlap across banks, so total time << serial sum."""
    engine = make_engine()
    controller = engine.controller
    addrs = [controller.address_of(bank=b, row=5) for b in range(16)]
    results = engine.execute_parallel(addrs, issued=0)
    assert len(results) == 16
    serial_estimate = sum(r.latency for r in results)
    wall_clock = max(r.finish for r in results)
    assert wall_clock < serial_estimate / 2


def test_execute_parallel_preserves_order_and_kinds():
    engine = make_engine()
    controller = engine.controller
    addrs = [controller.address_of(bank=b, row=5) for b in range(4)]
    engine.execute_parallel(addrs, issued=0)
    again = engine.execute_parallel(addrs, issued=100_000)
    assert [r.bank for r in again] == [0, 1, 2, 3]
    assert all(r.kind is AccessKind.HIT for r in again)


def test_pei_config_validation():
    with pytest.raises(ValueError):
        PEIConfig(issue_cycles=-1)
    with pytest.raises(ValueError):
        PEIConfig(monitor_entries=5, monitor_ways=2)
    with pytest.raises(ValueError):
        PEIConfig(locality_threshold=0)
