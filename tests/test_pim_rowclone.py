"""Unit tests for the RowClone engine (PuM substrate)."""

import pytest

from repro.dram import AccessKind, DRAMGeometry, MemoryController, MemoryControllerConfig
from repro.pim import RowCloneConfig, RowCloneEngine

GEOM = DRAMGeometry(ranks=1, banks_per_rank=16, rows_per_bank=4096)


def make_engine(**kwargs):
    controller = MemoryController(MemoryControllerConfig(geometry=GEOM))
    return RowCloneEngine(RowCloneConfig(**kwargs), controller)


def test_single_rowclone_copies_within_bank():
    engine = make_engine()
    result = engine.clone_single_bank(bank=2, src_row=10, dst_row=20, issued=0)
    assert result.banks == [2]
    assert engine.controller.open_rows()[2] == 20


def test_multi_bank_rowclone_is_parallel():
    """§4.2: one RowClone transmits N bits in parallel — wall clock is a
    single FPM, not N of them."""
    engine = make_engine()
    controller = engine.controller
    src = controller.address_of(bank=0, row=10)
    dst = controller.address_of(bank=0, row=20)
    full_mask = (1 << GEOM.num_banks) - 1
    result = engine.clone(src, dst, full_mask, issued=0)
    single = make_engine().clone_single_bank(bank=0, src_row=10, dst_row=20,
                                             issued=0)
    assert len(result.per_bank) == GEOM.num_banks
    assert result.latency == single.latency


def test_rowclone_contention_detectable_in_latency():
    """The receiver's signal (§4.2 step 3): a probe RowClone into a bank the
    sender perturbed is slower than into an untouched bank."""
    engine = make_engine()
    controller = engine.controller
    # Receiver initializes bank 0: src row open after the init clone.
    engine.clone_single_bank(bank=0, src_row=10, dst_row=20, issued=0)
    engine.clone_single_bank(bank=1, src_row=10, dst_row=20, issued=10_000)
    # Sender perturbs bank 1 only.
    controller.activate(bank_index=1, row=99, issued=20_000, requestor="sender")
    quiet = engine.clone_single_bank(bank=0, src_row=20, dst_row=30,
                                     issued=30_000)
    noisy = engine.clone_single_bank(bank=1, src_row=20, dst_row=30,
                                     issued=40_000)
    assert noisy.latency > quiet.latency
    assert noisy.per_bank[0].kind is AccessKind.CONFLICT


def test_rowclone_threshold_150_separates_outcomes():
    """Fig. 7(b): *measured* probe latencies (engine latency + the
    ~20-cycle rdtscp read the receiver pays) straddle the 150 threshold."""
    RDTSCP_READ = 20
    engine = make_engine()
    controller = engine.controller
    engine.clone_single_bank(bank=0, src_row=10, dst_row=20, issued=0)
    quiet = engine.clone_single_bank(bank=0, src_row=20, dst_row=30,
                                     issued=10_000)
    controller.activate(bank_index=0, row=99, issued=20_000, requestor="sender")
    noisy = engine.clone_single_bank(bank=0, src_row=30, dst_row=40,
                                     issued=30_000)
    assert quiet.latency + RDTSCP_READ < 150 < noisy.latency + RDTSCP_READ


def test_mask_from_bits_roundtrip():
    bits = [1, 0, 1, 1, 0, 0, 0, 1]
    mask = RowCloneEngine.mask_from_bits(bits)
    assert mask == 0b10001101
    with pytest.raises(ValueError):
        RowCloneEngine.mask_from_bits([0, 2])


def test_empty_mask_clone_is_cheap_noop():
    engine = make_engine()
    src = engine.controller.address_of(bank=0, row=1)
    result = engine.clone(src, src, 0, issued=0)
    assert result.per_bank == []
    assert result.latency == (engine.config.issue_cycles
                              + 2 * engine.config.network_cycles)


def test_operations_counter():
    engine = make_engine()
    engine.clone_single_bank(bank=0, src_row=1, dst_row=2, issued=0)
    engine.clone_single_bank(bank=1, src_row=1, dst_row=2, issued=1000)
    assert engine.operations == 2


def test_invalid_config_rejected():
    with pytest.raises(ValueError):
        RowCloneConfig(issue_cycles=-1)


def test_rowclone_cross_subarray_falls_back_to_psm():
    """[52]: FPM needs src and dst in one subarray; crossing the boundary
    degrades to the serial mode, ~10x slower."""
    engine = make_engine()
    geom = engine.controller.config.geometry
    rows_per_sub = geom.rows_per_subarray
    fast = engine.clone_single_bank(bank=0, src_row=1, dst_row=2, issued=0)
    slow = engine.clone_single_bank(bank=1, src_row=1,
                                    dst_row=rows_per_sub + 1, issued=0)
    assert slow.latency > 5 * fast.latency


def test_rowclone_same_subarray_uses_fpm_everywhere():
    engine = make_engine()
    geom = engine.controller.config.geometry
    base = geom.rows_per_subarray * 3  # any subarray works
    result = engine.clone_single_bank(bank=0, src_row=base + 1,
                                      dst_row=base + 2, issued=0)
    t = engine.controller.config.timings
    assert result.latency < t.rowclone_psm_cycles(geom.lines_per_row)
