"""Property-based tests (hypothesis) on core invariants.

These pin down the simulation's correctness conditions: virtual time never
runs backward, banks never double-book, caches never over-fill, inclusive
levels stay inclusive, constant-time stays constant, and the covert
channels decode arbitrary messages exactly on a quiet system.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import System, SystemConfig
from repro.attacks import ImpactPnmChannel, ImpactPumChannel
from repro.cache import Cache, CacheConfig, HierarchyConfig
from repro.dram import (
    Bank,
    DRAMGeometry,
    DRAMTimings,
    MemoryController,
    MemoryControllerConfig,
)
from repro.sim import Barrier, Scheduler, Semaphore


def small_config():
    return SystemConfig(
        geometry=DRAMGeometry(ranks=1, banks_per_rank=16, rows_per_bank=4096),
        hierarchy=HierarchyConfig(num_cores=2, llc_size_mb=2.0,
                                  prefetchers_enabled=False),
        num_cores=2)


# ---------------------------------------------------------------------------
# Scheduler invariants
# ---------------------------------------------------------------------------

@given(advances=st.lists(st.lists(st.integers(min_value=0, max_value=500),
                                  min_size=1, max_size=6),
                         min_size=1, max_size=5))
@settings(max_examples=40)
def test_scheduler_time_monotone_and_all_finish(advances):
    sched = Scheduler()
    observed = {}

    def body(ctx, steps):
        times = [ctx.now]
        for step in steps:
            ctx.advance(step)
            times.append(ctx.now)
            yield None
        observed[ctx.name] = times

    threads = [sched.spawn(body, steps, name=f"t{i}")
               for i, steps in enumerate(advances)]
    sched.run()
    assert all(t.finished for t in threads)
    for times in observed.values():
        assert times == sorted(times)


@given(producers=st.integers(min_value=1, max_value=4),
       items=st.integers(min_value=1, max_value=5))
@settings(max_examples=25)
def test_semaphore_token_conservation(producers, items):
    """Consumers consume exactly what producers release — never more."""
    sched = Scheduler()
    sem = Semaphore()
    consumed = []

    def producer(ctx):
        for _ in range(items):
            ctx.advance(7)
            yield sem.release()

    def consumer(ctx):
        for _ in range(items * producers):
            yield sem.acquire()
            consumed.append(ctx.now)

    for i in range(producers):
        sched.spawn(producer, name=f"p{i}")
    sched.spawn(consumer, name="c")
    sched.run()
    assert len(consumed) == items * producers
    assert sem.value == 0


@given(parties=st.integers(min_value=2, max_value=5),
       rounds=st.integers(min_value=1, max_value=4))
@settings(max_examples=25)
def test_barrier_rounds_are_aligned(parties, rounds):
    sched = Scheduler()
    bar = Barrier(parties=parties)
    exits = []

    def body(ctx, delay):
        for r in range(rounds):
            ctx.advance(delay)
            yield bar.wait()
            exits.append((r, ctx.now))

    for i in range(parties):
        sched.spawn(body, 10 * (i + 1), name=f"b{i}")
    sched.run()
    for r in range(rounds):
        times = {t for rr, t in exits if rr == r}
        assert len(times) == 1  # everyone leaves round r at one instant


# ---------------------------------------------------------------------------
# DRAM bank invariants
# ---------------------------------------------------------------------------

bank_ops = st.lists(
    st.tuples(st.sampled_from(["access", "activate", "precharge", "rowclone"]),
              st.integers(min_value=0, max_value=63),   # row
              st.integers(min_value=0, max_value=200)),  # inter-op gap
    min_size=1, max_size=40)


@given(ops=bank_ops)
@settings(max_examples=50)
def test_bank_never_time_travels(ops):
    """Busy time is nondecreasing; operations never finish before they
    were issued; an access leaves its row open."""
    bank = Bank(index=0, timings=DRAMTimings())
    now = 0
    last_busy = 0
    for op, row, gap in ops:
        now += gap
        if op == "access":
            result = bank.access(row, now)
            assert result.finish >= now
            assert result.latency >= 0
            assert bank.open_row == row
        elif op == "activate":
            result = bank.activate(row, now)
            assert result.finish >= now
            assert bank.open_row == row
        elif op == "precharge":
            finish = bank.precharge(now)
            assert finish >= now
            assert bank.open_row is None
        else:
            result = bank.rowclone_fpm(row, (row + 1) % 64, now)
            assert result.finish >= now
        assert bank.busy_until >= last_busy
        last_busy = bank.busy_until


@given(rows=st.lists(st.integers(min_value=0, max_value=31), min_size=2,
                     max_size=30))
@settings(max_examples=50)
def test_bank_classify_agrees_with_access(rows):
    """classify() at the service instant predicts the access outcome."""
    bank = Bank(index=0, timings=DRAMTimings())
    now = 0
    for row in rows:
        now = bank.busy_until + 10
        predicted = bank.classify(row, now)
        result = bank.access(row, now)
        assert result.kind is predicted


# ---------------------------------------------------------------------------
# Cache invariants
# ---------------------------------------------------------------------------

cache_ops = st.lists(
    st.tuples(st.sampled_from(["access", "fill", "invalidate"]),
              st.integers(min_value=0, max_value=255)),  # line index
    min_size=1, max_size=80)


@given(ops=cache_ops)
@settings(max_examples=50)
def test_cache_sets_never_overfill(ops):
    cache = Cache(CacheConfig(name="t", size_bytes=2048, ways=2,
                              latency_cycles=1))
    for op, line in ops:
        addr = line * 64
        if op == "access":
            cache.access(addr)
        elif op == "fill":
            cache.fill(addr)
        else:
            cache.invalidate(addr)
    for set_index in range(cache.config.num_sets):
        resident = cache.resident_lines(set_index)
        assert len(resident) <= cache.config.ways
        assert len(set(resident)) == len(resident)
        for line_addr in resident:
            assert cache.set_index_of(line_addr) == set_index
    assert cache.stats.accesses == sum(1 for op, _ in ops if op == "access")


@given(addrs=st.lists(st.integers(min_value=0, max_value=1 << 22),
                      min_size=1, max_size=60))
@settings(max_examples=25, deadline=None)
def test_hierarchy_inclusion_invariant(addrs):
    """Inclusive LLC: any line resident in an L1 or L2 is also in the LLC."""
    from repro.cache import CacheHierarchy
    controller = MemoryController(MemoryControllerConfig(
        geometry=DRAMGeometry(ranks=1, banks_per_rank=16, rows_per_bank=4096)))
    h = CacheHierarchy(HierarchyConfig(num_cores=2, llc_size_mb=1.0 / 16,
                                       prefetchers_enabled=False), controller)
    for i, addr in enumerate(addrs):
        h.access(core=i % 2, addr=addr, issued=i * 500)
    for upper_group in (h.l1, h.l2):
        for cache in upper_group:
            for set_index in range(cache.config.num_sets):
                for line_addr in cache.resident_lines(set_index):
                    assert h.llc.probe(line_addr), hex(line_addr)


# ---------------------------------------------------------------------------
# Controller invariants
# ---------------------------------------------------------------------------

@given(pattern=st.lists(st.tuples(st.integers(min_value=0, max_value=15),
                                  st.integers(min_value=0, max_value=63)),
                        min_size=1, max_size=30))
@settings(max_examples=30)
def test_constant_time_is_constant(pattern):
    """CTD: spaced accesses (no queueing) always take the same latency,
    whatever the bank/row pattern."""
    controller = MemoryController(MemoryControllerConfig(
        geometry=DRAMGeometry(ranks=1, banks_per_rank=16, rows_per_bank=4096),
        constant_time=True))
    latencies = set()
    now = 0
    for bank, row in pattern:
        result = controller.access(controller.address_of(bank, row), now)
        latencies.add(result.latency)
        now = result.finish + 500  # drain all queues
    assert len(latencies) == 1


# ---------------------------------------------------------------------------
# Channel round-trips
# ---------------------------------------------------------------------------

@given(message=st.lists(st.integers(min_value=0, max_value=1), min_size=1,
                        max_size=48))
@settings(max_examples=10, deadline=None)
def test_impact_pnm_decodes_any_message(message):
    channel = ImpactPnmChannel(System(small_config()))
    result = channel.transmit(message)
    assert result.received == message


@given(message=st.lists(st.integers(min_value=0, max_value=1), min_size=1,
                        max_size=48))
@settings(max_examples=10, deadline=None)
def test_impact_pum_decodes_any_message(message):
    channel = ImpactPumChannel(System(small_config()))
    result = channel.transmit(message)
    assert result.received == message
