"""Tests for the simulation-as-a-service daemon (:mod:`repro.serve`).

Scheduler semantics (dedup, fair share, priorities, cancellation,
worker-death resilience) run in-process with ``use_pool=False`` for
determinism; the end-to-end tests start a real asyncio TCP server in a
thread and drive it with the blocking :class:`repro.serve.ServeClient`.
"""

import asyncio
import json
import os
import socket
import threading
import time

import pytest

from repro.exp import ResultCache, WorkerPool
from repro.exp.runner import PoolUnavailableError
from repro.exp.sweep import SweepPoint
from repro.obs import metrics as obs_metrics
from repro.serve import (
    ProtocolError,
    ServeClient,
    ServeError,
    ServeScheduler,
    ServeServer,
    build_points,
    experiment_registry,
    point_key,
)
from repro.serve import protocol

RUNS = {"n": 0}
ORDER = []


def quick_point(value):
    """Counts its executions — dedup assertions read the delta."""
    RUNS["n"] += 1
    ORDER.append(value)
    return {"value": value, "square": value * value}


def slow_point(value, delay=0.05):
    time.sleep(delay)
    ORDER.append(value)
    return {"value": value}


def failing_point(value):
    raise ValueError(f"bad {value}")


def crash_worker_point(sentinel):
    """Kills its worker process on first run; succeeds on the retry.

    The sentinel file distinguishes the attempts — created just before
    the hard exit, so the fresh worker that retries sees it and returns.
    """
    if not os.path.exists(sentinel):
        open(sentinel, "w").close()
        os._exit(1)
    return {"retried": True}


def _points(values, fn=quick_point, experiment="t"):
    return [SweepPoint(experiment, fn, {"value": v}) for v in values]


def _run(coro):
    return asyncio.run(coro)


# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------

class TestProtocol:
    def test_encode_decode_roundtrip(self):
        message = {"op": "submit", "points": [{"llc_mb": 8}], "priority": 2}
        assert protocol.decode(protocol.encode(message)) == message

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            protocol.decode(b"not json\n")
        with pytest.raises(ProtocolError):
            protocol.decode(b"[1, 2]\n")  # not an object

    def test_registry_names_figure_points(self):
        registry = experiment_registry()
        for name in ("fig8", "fig8-quality", "covert", "sidechannel"):
            assert callable(registry[name])

    def test_build_points_experiment(self):
        points = build_points("fig8", None, [{"llc_mb": 8}, {"llc_mb": 64}])
        assert [p.params["llc_mb"] for p in points] == [8, 64]
        assert all(p.experiment == "fig8" for p in points)

    def test_build_points_fn_escape_hatch(self):
        points = build_points(None, "tests.test_serve:quick_point",
                              [{"value": 3}])
        assert points[0].fn is quick_point

    def test_build_points_validation(self):
        with pytest.raises(ProtocolError, match="exactly one"):
            build_points("fig8", "m:f", [{}])
        with pytest.raises(ProtocolError, match="exactly one"):
            build_points(None, None, [{}])
        with pytest.raises(ProtocolError, match="unknown experiment"):
            build_points("nope", None, [{}])
        with pytest.raises(ProtocolError, match="no points"):
            build_points("fig8", None, [])
        with pytest.raises(ProtocolError, match="JSON object"):
            build_points("fig8", None, [[1, 2]])
        with pytest.raises(ProtocolError, match="not 'module:attribute'"):
            build_points(None, "noattr", [{}])
        with pytest.raises(ProtocolError, match="cannot import"):
            build_points(None, "no.such.module:f", [{}])

    def test_point_key_separates_params_and_fns(self):
        a1 = point_key(SweepPoint("t", quick_point, {"value": 1}), "v")
        a1b = point_key(SweepPoint("t", quick_point, {"value": 1}), "v")
        a2 = point_key(SweepPoint("t", quick_point, {"value": 2}), "v")
        other_fn = point_key(SweepPoint("t", slow_point, {"value": 1}), "v")
        assert a1 == a1b
        assert len({a1, a2, other_fn}) == 3

    def test_point_key_tracks_code_version(self):
        point = SweepPoint("t", quick_point, {"value": 1})
        assert point_key(point, "v1") != point_key(point, "v2")


# ---------------------------------------------------------------------------
# Scheduler: dedup, caching, ordering
# ---------------------------------------------------------------------------

class TestSchedulerDedup:
    def test_duplicate_concurrent_submissions_execute_once(self):
        """The acceptance bar: N clients submitting the identical sweep
        while it is in flight perform zero extra point executions."""
        async def main():
            sched = ServeScheduler(jobs=2, use_pool=False)
            await sched.start()
            before = RUNS["n"]
            jobs = [await sched.submit(f"client-{i}", _points([10, 11]))
                    for i in range(3)]
            await asyncio.gather(*(j.done.wait() for j in jobs))
            await sched.stop()
            return sched, jobs, RUNS["n"] - before

        sched, jobs, executed = _run(main())
        assert executed == 2  # 6 requested points, 2 executions
        counters = sched.registry.counters
        assert counters["serve.points.executed"].value == 2
        assert counters["serve.points.deduped"].value == 4
        for job in jobs:
            assert job.ok
            assert [r["value"] for r in job.results] == [10, 11]

    def test_result_cache_answers_without_execution(self, tmp_path):
        cache = ResultCache(tmp_path, version="vT")
        cache.put("t", {"value": 5}, {"value": 5, "square": 25})

        async def main():
            sched = ServeScheduler(jobs=1, cache=cache, use_pool=False)
            await sched.start()
            before = RUNS["n"]
            job = await sched.submit("c", _points([5]))
            await job.done.wait()
            await sched.stop()
            return job, RUNS["n"] - before

        job, executed = _run(main())
        assert executed == 0
        assert job.sources == ["cache"]
        assert job.results == [{"value": 5, "square": 25}]

    def test_executions_populate_the_result_cache(self, tmp_path):
        cache = ResultCache(tmp_path, version="vT")

        async def main():
            sched = ServeScheduler(jobs=1, cache=cache, use_pool=False)
            await sched.start()
            first = await sched.submit("c", _points([6]))
            await first.done.wait()
            second = await sched.submit("c", _points([6]))
            await second.done.wait()
            await sched.stop()
            return first, second

        first, second = _run(main())
        assert first.sources == ["inline"]
        assert second.sources == ["cache"]
        assert second.results == first.results

    def test_priority_within_client(self):
        """Higher-priority jobs of the same client run first."""
        async def main():
            sched = ServeScheduler(jobs=1, use_pool=False)
            low = await sched.submit("c", _points([100]), priority=0)
            high = await sched.submit("c", _points([200]), priority=5)
            marker = len(ORDER)
            await sched.start()
            await asyncio.gather(low.done.wait(), high.done.wait())
            await sched.stop()
            return ORDER[marker:]

        ran = _run(main())
        assert ran == [200, 100]

    def test_fair_share_interleaves_clients(self):
        """A bulk submitter does not starve a later small one: after A's
        first point, the least-recently-served client (B) goes next."""
        async def main():
            sched = ServeScheduler(jobs=1, use_pool=False)
            a = await sched.submit("a", _points([1, 2, 3]))
            b = await sched.submit("b", _points([99]))
            marker = len(ORDER)
            await sched.start()
            await asyncio.gather(a.done.wait(), b.done.wait())
            await sched.stop()
            return ORDER[marker:]

        ran = _run(main())
        assert ran.index(99) == 1  # b's point ran second, not last
        assert sorted(ran) == [1, 2, 3, 99]

    def test_point_failure_is_reported_not_fatal(self):
        async def main():
            sched = ServeScheduler(jobs=1, use_pool=False)
            await sched.start()
            points = [SweepPoint("t", failing_point, {"value": 1}),
                      SweepPoint("t", quick_point, {"value": 2})]
            job = await sched.submit("c", points)
            await job.done.wait()
            await sched.stop()
            return sched, job

        sched, job = _run(main())
        assert not job.ok
        assert "ValueError: bad 1" in job.errors[0]
        assert job.results[1] == {"value": 2, "square": 4}
        assert sched.registry.counters["serve.points.failed"].value == 1


# ---------------------------------------------------------------------------
# Scheduler: cancellation
# ---------------------------------------------------------------------------

class TestSchedulerCancellation:
    def test_cancel_client_drops_only_their_queued_points(self):
        async def main():
            sched = ServeScheduler(jobs=1, use_pool=False)
            # No dispatcher yet: everything stays queued.
            a = await sched.submit("a", _points([1, 2, 3]))
            b = await sched.submit("b", _points([7, 8]))
            dropped = sched.cancel_client("a")
            assert dropped == 3
            assert a.cancelled and a.done.is_set()
            await sched.start()
            await asyncio.wait_for(b.done.wait(), timeout=30)
            await sched.stop()
            return sched, b

        sched, b = _run(main())
        assert b.ok and [r["value"] for r in b.results] == [7, 8]
        assert sched.registry.counters["serve.points.cancelled"].value == 3

    def test_shared_point_survives_one_subscriber_cancelling(self):
        """A deduplicated point queued by client A and subscribed by
        client B keeps running for B when A disconnects."""
        async def main():
            sched = ServeScheduler(jobs=1, use_pool=False)
            a = await sched.submit("a", _points([42]))
            b = await sched.submit("b", _points([42]))  # dedup subscribe
            dropped = sched.cancel_client("a")
            assert dropped == 0  # b still wants it
            await sched.start()
            await asyncio.wait_for(b.done.wait(), timeout=30)
            await sched.stop()
            return a, b

        a, b = _run(main())
        assert a.cancelled and not a.ok
        assert b.ok and b.results[0]["value"] == 42

    def test_cancel_job_leaves_other_jobs_of_same_client(self):
        async def main():
            sched = ServeScheduler(jobs=1, use_pool=False)
            doomed = await sched.submit("c", _points([51]))
            kept = await sched.submit("c", _points([52]))
            assert sched.cancel_job(doomed.job_id)
            assert not sched.cancel_job(doomed.job_id)  # already done
            await sched.start()
            await asyncio.wait_for(kept.done.wait(), timeout=30)
            await sched.stop()
            return doomed, kept

        doomed, kept = _run(main())
        assert doomed.cancelled
        assert kept.ok and kept.results[0]["value"] == 52


# ---------------------------------------------------------------------------
# Scheduler: pool dispatch resilience
# ---------------------------------------------------------------------------

def _pool_or_skip():
    pool = WorkerPool()
    try:
        pool.ensure(1)
    except (OSError, PermissionError, RuntimeError, ImportError) as exc:
        pool.shutdown()
        pytest.skip(f"worker processes unavailable: {exc}")
    return pool


class TestSchedulerPool:
    def test_points_execute_on_pool_workers(self):
        pool = _pool_or_skip()

        async def main():
            sched = ServeScheduler(jobs=2, pool=pool, use_pool=True,
                                   idle_workers=0)
            await sched.start()
            job = await sched.submit("c", _points([3, 4]))
            await asyncio.wait_for(job.done.wait(), timeout=60)
            await sched.stop()
            return job

        try:
            job = _run(main())
            assert job.ok
            assert job.sources == ["executed", "executed"]
            assert [r["value"] for r in job.results] == [3, 4]
        finally:
            pool.shutdown()

    def test_worker_death_mid_request_completes_job(self, tmp_path):
        """A worker hard-dying mid-point is retired and the point retried
        on a fresh worker — the client still gets its result."""
        pool = _pool_or_skip()
        sentinel = str(tmp_path / "died-once")

        async def main():
            sched = ServeScheduler(jobs=1, pool=pool, use_pool=True,
                                   idle_workers=0)
            await sched.start()
            job = await sched.submit(
                "c", [SweepPoint("t", crash_worker_point,
                                 {"sentinel": sentinel})])
            await asyncio.wait_for(job.done.wait(), timeout=60)
            await sched.stop()
            return sched, job

        try:
            sched, job = _run(main())
            assert job.ok
            assert job.results == [{"retried": True}]
            assert sched.registry.counters["serve.workers.died"].value >= 1
        finally:
            pool.shutdown()

    def test_pool_unavailable_falls_back_inline(self, monkeypatch):
        pool = WorkerPool()
        monkeypatch.setattr(pool, "_spawn", lambda: (_ for _ in ()).throw(
            PoolUnavailableError("no processes here")))

        async def main():
            sched = ServeScheduler(jobs=1, pool=pool, use_pool=True,
                                   idle_workers=0)
            await sched.start()
            job = await sched.submit("c", _points([9]))
            await asyncio.wait_for(job.done.wait(), timeout=30)
            await sched.stop()
            return sched, job

        sched, job = _run(main())
        assert job.ok and job.sources == ["inline"]
        assert sched.registry.counters["serve.points.inline"].value == 1

    def test_idle_scheduler_shrinks_pool(self):
        pool = _pool_or_skip()

        async def main():
            sched = ServeScheduler(jobs=2, pool=pool, use_pool=True,
                                   idle_workers=0)
            await sched.start()
            job = await sched.submit("c", _points([13, 14]))
            await asyncio.wait_for(job.done.wait(), timeout=60)
            # Give the dispatch loop one more wake to observe idleness.
            await asyncio.sleep(0)
            await asyncio.sleep(0.05)
            size = len(pool)
            await sched.stop()
            return size

        try:
            assert _run(main()) == 0
        finally:
            pool.shutdown()


# ---------------------------------------------------------------------------
# End-to-end over sockets
# ---------------------------------------------------------------------------

class _ServerThread:
    """A real daemon on a real socket, driven from the test thread."""

    def __init__(self, **scheduler_kwargs):
        self.addr = None
        self.scheduler = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._main,
                                        args=(scheduler_kwargs,), daemon=True)

    def _main(self, scheduler_kwargs):
        async def run():
            self.scheduler = ServeScheduler(**scheduler_kwargs)
            server = ServeServer(self.scheduler, port=0)
            self.addr = await server.start()
            self._ready.set()
            await server.serve_until_shutdown()

        asyncio.run(run())

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(timeout=10), "server did not start"
        return self

    def __exit__(self, *exc):
        try:
            with ServeClient(*self.addr, timeout=10) as client:
                client.shutdown_server()
        except OSError:
            pass
        self._thread.join(timeout=10)


class TestEndToEnd:
    def test_submit_streams_progress_and_results(self):
        events = []
        with _ServerThread(jobs=2, use_pool=False) as server:
            with ServeClient(*server.addr, timeout=30) as client:
                job = client.submit(
                    fn="tests.test_serve:quick_point",
                    points=[{"value": 2}, {"value": 3}],
                    on_event=lambda e: events.append(e["event"]))
        assert job.ok
        assert [r["square"] for r in job.results] == [4, 9]
        assert events[0] == "accepted" and events[-1] == "done"
        assert events.count("point") == 2
        assert job.events == 4

    def test_metrics_and_status_endpoints(self):
        with _ServerThread(jobs=1, use_pool=False) as server:
            with ServeClient(*server.addr, timeout=30) as client:
                client.submit(fn="tests.test_serve:quick_point",
                              points=[{"value": 8}])
                metrics = client.metrics()
                status = client.status()
        assert metrics["counters"]["serve.points.executed"] == 1
        assert "serve.point_seconds" in metrics["histograms"]
        assert status["jobs_total"] == 1 and status["jobs_done"] == 1
        assert status["queued_points"] == 0

    def test_metrics_merge_installed_registry(self):
        """The endpoint folds a process-globally installed registry (e.g.
        a sweep running in the daemon process) into the snapshot."""
        registry = obs_metrics.install(obs_metrics.MetricsRegistry())
        registry.counter("dram.RD").inc(7)
        try:
            with _ServerThread(jobs=1, use_pool=False) as server:
                with ServeClient(*server.addr, timeout=30) as client:
                    metrics = client.metrics()
        finally:
            obs_metrics.uninstall()
        assert metrics["counters"]["dram.RD"] == 7

    def test_duplicate_submission_runs_points_once_over_sockets(self):
        before = RUNS["n"]
        with _ServerThread(jobs=1, use_pool=False) as server:
            results = [None, None]

            def hammer(slot):
                with ServeClient(*server.addr, timeout=30) as client:
                    results[slot] = client.submit(
                        fn="tests.test_serve:slow_point",
                        points=[{"value": 70 + i, "delay": 0.05}
                                for i in range(3)])

            threads = [threading.Thread(target=hammer, args=(slot,))
                       for slot in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            with ServeClient(*server.addr, timeout=30) as client:
                executed = client.status()["counters"].get(
                    "serve.points.executed", 0)
        assert all(r is not None and r.ok for r in results)
        assert results[0].results == results[1].results
        assert executed == 3  # 6 submitted points, 3 executions

    def test_bad_submit_yields_error_event(self):
        with _ServerThread(jobs=1, use_pool=False) as server:
            with ServeClient(*server.addr, timeout=30) as client:
                with pytest.raises(ServeError, match="no points"):
                    client.submit("fig8", [])
                with pytest.raises(ServeError, match="unknown experiment"):
                    client.submit("not-a-figure", [{}])
                # The connection survives rejected submissions.
                job = client.submit(fn="tests.test_serve:quick_point",
                                    points=[{"value": 4}])
        assert job.ok

    def test_unknown_op_yields_error_event(self):
        with _ServerThread(jobs=1, use_pool=False) as server:
            with socket.create_connection(server.addr, timeout=10) as sock:
                fh = sock.makefile("rwb")
                fh.write(protocol.encode({"op": "frobnicate"}))
                fh.flush()
                event = json.loads(fh.readline())
        assert event["event"] == "error"
        assert "unknown op" in event["message"]

    def test_disconnect_cancels_only_that_clients_queue(self):
        """Dropping a connection mid-sweep cancels its queued points;
        other clients' work proceeds untouched."""
        with _ServerThread(jobs=1, use_pool=False) as server:
            # Client A floods the single slot with slow points, then
            # vanishes without reading a single event.
            raw = socket.create_connection(server.addr, timeout=10)
            raw.sendall(protocol.encode({
                "op": "submit", "fn": "tests.test_serve:slow_point",
                "points": [{"value": 900 + i, "delay": 0.2}
                           for i in range(5)]}))
            time.sleep(0.15)  # server reads + queues; first point starts
            raw.close()
            with ServeClient(*server.addr, timeout=30) as client:
                job = client.submit(fn="tests.test_serve:quick_point",
                                    points=[{"value": 6}])
                status = client.status()
        assert job.ok and job.results[0]["value"] == 6
        assert status["counters"].get("serve.points.cancelled", 0) >= 1
        assert status["queued_points"] == 0


# ---------------------------------------------------------------------------
# Metrics snapshot (the serve endpoint's read side)
# ---------------------------------------------------------------------------

class TestMetricsSnapshot:
    def test_snapshot_empty_without_registry(self):
        obs_metrics.uninstall()
        assert obs_metrics.snapshot() == {}

    def test_snapshot_reflects_installed_registry(self):
        registry = obs_metrics.install(obs_metrics.MetricsRegistry())
        try:
            registry.counter("x").inc(3)
            snap = obs_metrics.snapshot()
        finally:
            obs_metrics.uninstall()
        assert snap["counters"] == {"x": 3}
        assert obs_metrics.snapshot() == {}
