"""Unit tests for the virtual-time scheduler and sync primitives."""

import pytest

from repro.sim import Barrier, DeadlockError, Scheduler, Semaphore


def test_single_thread_runs_to_completion():
    sched = Scheduler()
    seen = []

    def body(ctx):
        ctx.advance(10)
        yield None
        seen.append(ctx.now)

    thread = sched.spawn(body)
    end = sched.run()
    assert seen == [10]
    assert thread.finished
    assert end == 10


def test_threads_interleave_in_time_order():
    sched = Scheduler()
    order = []

    def body(ctx, step):
        for _ in range(3):
            ctx.advance(step)
            order.append((ctx.name, ctx.now))
            yield None

    sched.spawn(body, 5, name="fast")
    sched.spawn(body, 7, name="slow")
    sched.run()
    times = [t for _, t in order]
    assert times == sorted(times)


def test_thread_result_captured():
    sched = Scheduler()

    def body(ctx):
        ctx.advance(1)
        yield None
        return 42

    thread = sched.spawn(body)
    sched.run()
    assert thread.result == 42


def test_advance_negative_raises():
    sched = Scheduler()

    def body(ctx):
        with pytest.raises(ValueError):
            ctx.advance(-1)
        yield None

    sched.spawn(body)
    sched.run()


def test_non_generator_body_rejected():
    sched = Scheduler()

    def not_a_generator(ctx):
        return 1

    with pytest.raises(TypeError):
        sched.spawn(not_a_generator)


def test_semaphore_timestamp_propagates_forward():
    """A waiter cannot consume a token before it was released."""
    sched = Scheduler()
    sem = Semaphore()
    resume_times = {}

    def producer(ctx):
        ctx.advance(100)
        yield sem.release()

    def consumer(ctx):
        ctx.advance(5)
        yield sem.acquire()
        resume_times["consumer"] = ctx.now

    sched.spawn(producer)
    sched.spawn(consumer)
    sched.run()
    assert resume_times["consumer"] == 100


def test_semaphore_no_backward_time_travel_for_late_acquirer():
    """A token released early is consumed at the acquirer's own later time."""
    sched = Scheduler()
    sem = Semaphore()
    resume_times = {}

    def producer(ctx):
        ctx.advance(10)
        yield sem.release()

    def consumer(ctx):
        ctx.advance(500)
        yield sem.acquire()
        resume_times["consumer"] = ctx.now

    sched.spawn(producer)
    sched.spawn(consumer)
    sched.run()
    assert resume_times["consumer"] == 500


def test_semaphore_initial_tokens():
    sched = Scheduler()
    sem = Semaphore(initial=2)
    done = []

    def consumer(ctx):
        yield sem.acquire()
        done.append(ctx.name)

    sched.spawn(consumer, name="a")
    sched.spawn(consumer, name="b")
    sched.run()
    assert sorted(done) == ["a", "b"]


def test_semaphore_negative_initial_rejected():
    with pytest.raises(ValueError):
        Semaphore(initial=-1)


def test_semaphore_fifo_pipelining_models_overlap():
    """Sender/receiver batch pipelining: receiver k starts only after the
    sender finished batch k, and overlaps with sender batch k+1 (§4.1)."""
    sched = Scheduler()
    sem = Semaphore()
    batches = 4
    send_cost, probe_cost = 100, 60
    probe_windows = []

    def sender(ctx):
        for _ in range(batches):
            ctx.advance(send_cost)
            yield sem.release()

    def receiver(ctx):
        for _ in range(batches):
            yield sem.acquire()
            start = ctx.now
            ctx.advance(probe_cost)
            probe_windows.append((start, ctx.now))
            yield None

    sched.spawn(sender)
    sched.spawn(receiver)
    total = sched.run()
    # Sender finishes batch k at (k+1)*send_cost; probes start no earlier.
    for k, (start, _end) in enumerate(probe_windows):
        assert start >= (k + 1) * send_cost
    # Pipelined total << serialized total.
    assert total < batches * (send_cost + probe_cost)


def test_barrier_aligns_to_max_arrival():
    sched = Scheduler()
    bar = Barrier(parties=3)
    resumed = []

    def body(ctx, delay):
        ctx.advance(delay)
        yield bar.wait()
        resumed.append(ctx.now)

    for delay in (10, 50, 30):
        sched.spawn(body, delay)
    sched.run()
    assert resumed == [50, 50, 50]


def test_barrier_reusable_across_generations():
    sched = Scheduler()
    bar = Barrier(parties=2)
    resumed = []

    def body(ctx, delay):
        for round_ in range(2):
            ctx.advance(delay)
            yield bar.wait()
            resumed.append((round_, ctx.now))

    sched.spawn(body, 10)
    sched.spawn(body, 25)
    sched.run()
    by_round = {}
    for round_, t in resumed:
        by_round.setdefault(round_, set()).add(t)
    assert by_round[0] == {25}
    assert by_round[1] == {50}


def test_barrier_requires_positive_parties():
    with pytest.raises(ValueError):
        Barrier(parties=0)


def test_deadlock_detected():
    sched = Scheduler()
    sem = Semaphore()

    def body(ctx):
        yield sem.acquire()

    sched.spawn(body)
    with pytest.raises(DeadlockError):
        sched.run()


def test_fence_waits_for_tracked_completions():
    sched = Scheduler()
    fenced_at = []

    def body(ctx):
        ctx.track_completion(ctx.now + 300)
        ctx.track_completion(ctx.now + 150)
        ctx.advance(10)
        ctx.fence()
        fenced_at.append(ctx.now)
        yield None

    sched.spawn(body)
    sched.run()
    assert fenced_at == [300]


def test_fence_noop_without_pending():
    sched = Scheduler()

    def body(ctx):
        ctx.advance(7)
        ctx.fence()
        assert ctx.now == 7
        yield None

    sched.spawn(body)
    sched.run()


def test_run_until_bound_stops_early():
    sched = Scheduler()
    steps = []

    def body(ctx):
        for _ in range(100):
            ctx.advance(10)
            steps.append(ctx.now)
            yield None

    sched.spawn(body)
    sched.run(until=55)
    assert steps and max(steps) <= 65  # stops shortly after the bound


def test_unknown_command_rejected():
    sched = Scheduler()

    def body(ctx):
        yield "bogus"

    sched.spawn(body)
    with pytest.raises(TypeError):
        sched.run()
