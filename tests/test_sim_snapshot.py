"""Warm-state snapshot/restore: round trips, aliasing, and reuse."""

import pytest

from repro.cache.cache import Cache, CacheConfig
from repro.config import SystemConfig
from repro.dram.bank import Bank
from repro.dram.timings import DRAMTimings
from repro.sim.snapshot import SystemSnapshot, restore_rows
from repro.system import System
from repro.workloads.kernels import workload_spec
from repro.workloads.runner import (
    WarmupCache,
    fig11_config,
    run_multiprogrammed,
)


def _drive(system, count, seed_stride=7, start=0):
    """Deterministic access stream; returns (latency, hit_level) trace."""
    now = start
    trace = []
    for i in range(count):
        result = system.hierarchy.access(
            i % system.config.num_cores, (i * 64 * seed_stride) % (1 << 22),
            now, pc=i % 53)
        trace.append((result.latency, result.hit_level))
        now = result.finish
    return trace, now


def test_restore_rows_length_mismatch_raises():
    dst = [[0, 0], [0, 0]]
    with pytest.raises(ValueError):
        restore_rows(dst, [[1, 1]])


def test_system_snapshot_component_missing_raises():
    snap = SystemSnapshot(config=None, payload={"a": 1})
    assert snap.component("a") == 1
    with pytest.raises(KeyError):
        snap.component("missing")


def test_cache_snapshot_round_trip_is_independent_copy():
    cache = Cache(CacheConfig(name="t", size_bytes=4096, ways=4,
                              latency_cycles=1, replacement="srrip"))
    for i in range(64):
        cache.fill(i * 64)
        cache.access(i * 64, is_write=(i % 3 == 0))
    state = cache.snapshot_state()
    before = [cache.resident_lines(s) for s in range(cache.config.num_sets)]
    # Mutate heavily after the snapshot, then restore.
    for i in range(64, 160):
        cache.fill(i * 64, dirty=True)
    cache.restore_state(state)
    after = [cache.resident_lines(s) for s in range(cache.config.num_sets)]
    assert before == after
    # The snapshot payload is not aliased by the live cache: mutating the
    # restored cache must not corrupt the saved state.
    cache.fill(999 * 64)
    assert state["tags"] != [[999]]  # payload untouched (sanity)


def test_srrip_restore_preserves_cache_policy_alias():
    cache = Cache(CacheConfig(name="t", size_bytes=4096, ways=4,
                              latency_cycles=1, replacement="srrip"))
    for i in range(80):
        cache.fill(i * 64)
    state = cache.snapshot_state()
    for i in range(80, 200):
        cache.fill(i * 64)
    cache.restore_state(state)
    # Cache._rrpv aliases SRRIPPolicy._rrpv row lists; an in-place restore
    # must keep both views identical (a rebinding restore would split them).
    assert cache._rrpv is cache._policy._rrpv
    for cache_row, policy_row in zip(cache._rrpv, cache._policy._rrpv):
        assert cache_row is policy_row


def test_bank_snapshot_round_trip():
    bank = Bank(index=0, timings=DRAMTimings())
    bank.access(row=5, issued=100)
    bank.access(row=9, issued=500)
    state = bank.snapshot_state()
    bank.access(row=1, issued=900)
    bank.precharge(1500)
    bank.restore_state(state)
    assert bank.open_row == 9
    assert bank.stats.conflicts == 1


def test_system_snapshot_restore_replays_identically():
    system = System(SystemConfig.paper_default())
    _, now = _drive(system, 3000)
    snap = system.snapshot()
    tail_a, _ = _drive(system, 1500, seed_stride=13, start=now)
    system.restore(snap)
    tail_b, _ = _drive(system, 1500, seed_stride=13, start=now)
    assert tail_a == tail_b


def test_snapshot_restores_into_fresh_system():
    warm = System(SystemConfig.paper_default())
    _, now = _drive(warm, 3000)
    snap = warm.snapshot()
    tail_warm, _ = _drive(warm, 1500, seed_stride=13, start=now)

    fresh = System(SystemConfig.paper_default())
    fresh.restore(snap)
    tail_fresh, _ = _drive(fresh, 1500, seed_stride=13, start=now)
    assert tail_warm == tail_fresh


def test_snapshot_config_mismatch_raises():
    snap = System(SystemConfig.paper_default()).snapshot()
    other = System(fig11_config())
    with pytest.raises(ValueError):
        other.restore(snap)


def test_snapshot_predictor_presence_mismatch_raises():
    with_predictor = System(SystemConfig.paper_default())
    with_predictor.enable_offchip_predictor()
    snap = with_predictor.snapshot()
    without = System(SystemConfig.paper_default())
    with pytest.raises(ValueError):
        without.restore(snap)


def test_snapshot_covers_predictor_and_tlbs():
    system = System(SystemConfig.paper_default())
    predictor = system.enable_offchip_predictor()
    for i in range(200):
        predictor.predict_offchip(i * 64)
        predictor.train(i * 64, i % 2 == 0)
    system.mmus[0].warm_up([i * 4096 for i in range(32)])
    snap = system.snapshot()
    predictions_at_snap = predictor.predictions
    tlb_before = system.mmus[0].l2.snapshot_state()
    # Diverge, then restore.
    for i in range(200, 300):
        predictor.predict_offchip(i * 64)
    system.mmus[0].l2.flush()
    system.restore(snap)
    assert predictor.predictions == predictions_at_snap
    assert system.mmus[0].l2.snapshot_state() == tlb_before


def test_warmup_cache_matches_uncached_run():
    spec = workload_spec("bfs")
    stream = spec.refs(graph=spec.build_graph(), max_refs=2500)
    config = fig11_config()
    baseline = run_multiprogrammed(System(config), [stream, stream])
    cache = WarmupCache()
    first = run_multiprogrammed(System(config), [stream, stream],
                                warm_cache=cache)
    second = run_multiprogrammed(System(config), [stream, stream],
                                 warm_cache=cache)
    assert len(cache) == 1  # second run restored instead of re-warming
    for run in (first, second):
        assert run.cycles == baseline.cycles
        assert run.llc_misses == baseline.llc_misses
        assert run.instructions == baseline.instructions


def test_warmup_cache_keys_on_config():
    spec = workload_spec("bfs")
    stream = spec.refs(graph=spec.build_graph(), max_refs=1000)
    cache = WarmupCache()
    base = fig11_config()
    run_multiprogrammed(System(base), [stream, stream], warm_cache=cache)
    run_multiprogrammed(System(base.with_defense("crp")), [stream, stream],
                        warm_cache=cache)
    assert len(cache) == 2  # different row policy => different warm state


# ---------------------------------------------------------------------------
# Versioned byte serialization (the warm store's wire format)
# ---------------------------------------------------------------------------

def test_snapshot_bytes_round_trip():
    from repro.sim.snapshot import SNAPSHOT_FORMAT_VERSION, SnapshotFormatError

    system = System(fig11_config())
    _drive(system, 500)
    snap = system.snapshot()
    data = snap.to_bytes()
    assert data[:8] == b"RPRSNAP1"
    loaded = SystemSnapshot.from_bytes(data)
    assert loaded.config == snap.config
    restored = System(fig11_config())
    restored.restore(loaded)
    tail_restored, _ = _drive(restored, 300, seed_stride=13, start=50_000)
    tail_original, _ = _drive(system, 300, seed_stride=13, start=50_000)
    assert tail_restored == tail_original
    assert SNAPSHOT_FORMAT_VERSION == 1
    with pytest.raises(SnapshotFormatError):
        SystemSnapshot.from_bytes(b"definitely not a snapshot")
    with pytest.raises(SnapshotFormatError):
        # Same magic, unknown format version.
        SystemSnapshot.from_bytes(data[:8] + b"\xff\xff" + data[10:])


def test_snapshot_bytes_cross_process_round_trip(tmp_path):
    """A snapshot serialized by another process restores here and replays
    bit-identically to warm state produced in-process."""
    import json
    import os
    import subprocess
    import sys

    import repro

    child = r"""
import json, sys
from repro.system import System
from repro.workloads.runner import fig11_config

system = System(fig11_config())
now = 0
for i in range(2000):
    result = system.hierarchy.access(
        i % system.config.num_cores, (i * 64 * 7) % (1 << 22), now, pc=i % 53)
    now = result.finish
with open(sys.argv[1], "wb") as handle:
    handle.write(system.snapshot().to_bytes())
print(json.dumps({"now": now}))
"""
    path = tmp_path / "warm.snap"
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ, PYTHONPATH=src_dir)
    proc = subprocess.run([sys.executable, "-c", child, str(path)],
                          capture_output=True, text=True, env=env)
    assert proc.returncode == 0, proc.stderr
    now = json.loads(proc.stdout)["now"]

    snap = SystemSnapshot.from_bytes(path.read_bytes())
    restored = System(fig11_config())
    restored.restore(snap)
    tail_restored, _ = _drive(restored, 800, seed_stride=13, start=now)

    reference = System(fig11_config())
    _, reference_now = _drive(reference, 2000)
    assert reference_now == now
    tail_reference, _ = _drive(reference, 800, seed_stride=13, start=now)
    assert tail_restored == tail_reference
