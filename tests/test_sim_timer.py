"""Unit tests for the rdtscp-style cycle timer."""

import pytest

from repro.sim import CycleTimer, Scheduler, TimerConfig


def _run(body):
    sched = Scheduler()
    thread = sched.spawn(body)
    sched.run()
    return thread.result


def test_measures_elapsed_cycles():
    def body(ctx):
        timer = CycleTimer()
        timer.start(ctx)
        ctx.advance(123)
        latency = timer.stop(ctx)
        yield None
        return latency

    assert _run(body) == 123


def test_overhead_included_in_measurement():
    """Each timestamp read costs overhead; the stop-side read lands inside
    the measured window, matching real cpuid+rdtscp behaviour."""
    def body(ctx):
        timer = CycleTimer(TimerConfig(read_overhead_cycles=20))
        timer.start(ctx)
        ctx.advance(100)
        latency = timer.stop(ctx)
        yield None
        return latency

    assert _run(body) == 120


def test_coarse_resolution_quantizes():
    def body(ctx):
        timer = CycleTimer(TimerConfig(resolution_cycles=64))
        timer.start(ctx)
        ctx.advance(130)
        latency = timer.stop(ctx)
        yield None
        return latency

    assert _run(body) == 128


def test_stop_before_start_raises():
    def body(ctx):
        timer = CycleTimer()
        with pytest.raises(RuntimeError):
            timer.stop(ctx)
        yield None

    _run(body)


def test_timer_reusable():
    def body(ctx):
        timer = CycleTimer()
        values = []
        for delta in (10, 20):
            timer.start(ctx)
            ctx.advance(delta)
            values.append(timer.stop(ctx))
        yield None
        return values

    assert _run(body) == [10, 20]


def test_invalid_configs_rejected():
    with pytest.raises(ValueError):
        TimerConfig(resolution_cycles=0)
    with pytest.raises(ValueError):
        TimerConfig(read_overhead_cycles=-1)
