"""Integration tests for the assembled System and SystemConfig."""

import pytest

from repro import System, SystemConfig
from repro.dram import AccessKind, RowPolicy
from repro.sim import Scheduler


def small_config(**kwargs):
    from dataclasses import replace
    from repro.cache import HierarchyConfig
    from repro.dram import DRAMGeometry
    cfg = SystemConfig(
        geometry=DRAMGeometry(ranks=1, banks_per_rank=16, rows_per_bank=4096),
        hierarchy=HierarchyConfig(num_cores=2, llc_size_mb=2.0,
                                  prefetchers_enabled=False),
        num_cores=2)
    return replace(cfg, **kwargs) if kwargs else cfg


def run_thread(system, body):
    sched = Scheduler()
    thread = sched.spawn(body, system)
    sched.run()
    return thread.result


def test_paper_default_matches_table2():
    cfg = SystemConfig.paper_default()
    assert cfg.cpu_ghz == 2.6
    assert cfg.num_cores == 4
    assert cfg.geometry.banks_per_rank == 16
    assert cfg.geometry.ranks == 4
    assert cfg.hierarchy.l1_size_kb == 32
    assert cfg.hierarchy.l2_size_kb == 1024
    assert cfg.row_policy is RowPolicy.OPEN
    rows = cfg.describe()
    assert any("DDR4-2400" in r["configuration"] for r in rows)
    assert len(rows) == 6


def test_with_llc_sweep_updates_latency():
    base = SystemConfig.paper_default()
    big = base.with_llc(64.0)
    assert big.hierarchy.llc_size_mb == 64.0
    assert big.hierarchy.llc_latency_cycles > base.hierarchy.llc_latency_cycles


def test_with_banks_sweep():
    cfg = SystemConfig.paper_default().with_banks(1024)
    assert cfg.geometry.num_banks == 1024


def test_with_defense_presets():
    base = SystemConfig.paper_default()
    assert base.with_defense("crp").row_policy is RowPolicy.CLOSED
    assert base.with_defense("ctd").constant_time
    assert base.with_defense("open").row_policy is RowPolicy.OPEN
    with pytest.raises(ValueError):
        base.with_defense("magic")


def test_system_load_advances_context():
    system = System(small_config())

    def body(ctx, sys_):
        start = ctx.now
        result = sys_.load(ctx, core=0, addr=0x10000)
        yield None
        return ctx.now - start, result.hit_level

    elapsed, hit_level = run_thread(system, body)
    assert hit_level == 0
    assert elapsed > 0


def test_system_pei_op_and_measurement():
    system = System(small_config())
    addr = system.address_of(bank=1, row=7)

    def body(ctx, sys_):
        timer = sys_.new_timer()
        sys_.pei_op(ctx, addr)           # open the row
        timer.start(ctx)
        result = sys_.pei_op(ctx, addr)  # hit
        latency = timer.stop(ctx)
        yield None
        return latency, result.kind

    latency, kind = run_thread(system, body)
    assert kind is AccessKind.HIT
    assert latency < 150


def test_system_rowclone_roundtrip():
    system = System(small_config())
    src = system.address_of(bank=0, row=10)
    dst = system.address_of(bank=0, row=20)

    def body(ctx, sys_):
        result = sys_.rowclone(ctx, src, dst, mask=0b11)
        yield None
        return result

    result = run_thread(system, body)
    assert result.banks == [0, 1]


def test_system_dma_slower_than_pei():
    """§5.3: the DMA path pays OS overheads PEI does not."""
    system = System(small_config())
    addr = system.address_of(bank=2, row=3)

    def body(ctx, sys_):
        t0 = ctx.now
        sys_.pei_op(ctx, addr)
        pei_cost = ctx.now - t0
        t1 = ctx.now
        sys_.dma_access(ctx, addr)
        dma_cost = ctx.now - t1
        yield None
        return pei_cost, dma_cost

    pei_cost, dma_cost = run_thread(system, body)
    assert dma_cost > pei_cost


def test_system_clflush_then_reload_misses():
    system = System(small_config())

    def body(ctx, sys_):
        sys_.load(ctx, core=0, addr=0x20000)
        sys_.clflush(ctx, core=0, addr=0x20000)
        result = sys_.load(ctx, core=0, addr=0x20000)
        yield None
        return result.hit_level

    assert run_thread(system, body) == 0


def test_background_noise_injects_activations():
    system = System(small_config().with_noise(rate_per_kilocycle=5.0))
    fired = system.noise.run(0, 100_000)
    assert fired > 0
    assert system.controller.device.total_activations() >= fired


def test_background_noise_disabled_by_default():
    system = System(small_config())
    assert system.noise.run(0, 1_000_000) == 0


def test_offchip_predictor_requires_enabling():
    system = System(small_config())

    def body(ctx, sys_):
        with pytest.raises(RuntimeError):
            sys_.pei_op_predicted(ctx, 0x1000)
        yield None

    run_thread(system, body)
    system.enable_offchip_predictor()

    def body2(ctx, sys_):
        result = sys_.pei_op_predicted(ctx, sys_.address_of(bank=0, row=0))
        yield None
        return result

    assert run_thread(system, body2) is not None


def test_cycles_to_mbps():
    system = System(small_config())
    # 2.6 GHz: 260 cycles per bit -> 10 Mb/s
    assert system.cycles_to_mbps(1, 260) == pytest.approx(10.0)
    assert system.cycles_to_mbps(100, 0) == 0.0


def test_warm_up_prefills_tlbs():
    system = System(small_config())
    system.warm_up([0x1000, 0x2000], cores=[0])
    assert system.mmus[0].l1_4k.lookup(0x1000)
