"""Randomized bit-identity: the numpy vector engine vs the scalar path.

The vector backend (``repro.sim.vector``) is only allowed to exist
because it is *indistinguishable* from the reference loop — same finish
times, same per-access latencies, same cache tags/dirty bits/replacement
state, same hierarchy and DRAM statistics, access for access.  These
tests drive randomized mixed streams through both backends on twin
systems and compare everything observable, plain and sanitized, through
snapshot and warm-store round-trips, and for the chained DRAM run engine
across every bundled address mapping.
"""

import dataclasses
import random

import pytest

from repro.config import SystemConfig
from repro.exp.warmstore import WarmStore
from repro.sim import vector
from repro.system import System

pytestmark = pytest.mark.skipif(
    not vector.numpy_available(),
    reason=f"numpy unavailable: {vector.numpy_error()}")


# ----------------------------------------------------------------------
# Helpers: build twin systems, extract every observable bit of state
# ----------------------------------------------------------------------


def _config(prefetchers=True, replacement=None, mapping="row",
            refresh=False, row_timeout_ns=None):
    config = SystemConfig.paper_default()
    hier = config.hierarchy
    if not prefetchers:
        hier = dataclasses.replace(hier, prefetchers_enabled=False)
    if replacement is not None:
        hier = dataclasses.replace(hier, l1_replacement=replacement,
                                   l2_replacement=replacement,
                                   llc_replacement=replacement)
    config = dataclasses.replace(config, hierarchy=hier, mapping=mapping,
                                 refresh_enabled=refresh)
    if row_timeout_ns is not None:
        config = dataclasses.replace(
            config, timings=dataclasses.replace(
                config.timings, row_timeout_ns=row_timeout_ns))
    return config


def _statsdict(stats):
    if dataclasses.is_dataclass(stats):
        return dataclasses.asdict(stats)
    if hasattr(stats, "__dict__"):
        return dict(stats.__dict__)
    return {name: getattr(stats, name) for name in stats.__slots__}


def _caches(hierarchy):
    for attr in ("l1", "l2", "llc"):
        level = getattr(hierarchy, attr)
        if isinstance(level, list):
            for i, cache in enumerate(level):
                yield f"{attr}[{i}]", cache
        else:
            yield attr, level


def _full_state(system):
    """Everything the two backends must agree on, as plain comparables."""
    state = {}
    for name, cache in _caches(system.hierarchy):
        policy = cache._policy
        state[name] = (
            tuple(map(tuple, cache._tags)),
            tuple(map(tuple, cache._dirty)),
            _statsdict(cache.stats),
            repr(policy.snapshot_state()) if policy is not None else None,
        )
    state["hierarchy"] = _statsdict(system.hierarchy.stats)
    state["requestors"] = {
        name: _statsdict(stats)
        for name, stats in system.controller.requestor_stats.items()
    }
    banks = system.controller.device.banks
    state["banks"] = [
        (bank.open_row, bank.busy_until, bank.row_opened_at,
         bank.last_activation)
        for bank in banks
    ]
    return state


def _mixed_stream(rng, count, probe_lines=256, miss_lines=4096):
    """Hit-heavy probe replay with aliasing sets, strided miss bursts,
    and random far misses mixed in — the adversarial shape for the
    engine's classify/demote logic."""
    probe = [0x100000 + i * 64 for i in range(probe_lines)]
    addrs = []
    while len(addrs) < count:
        roll = rng.random()
        if roll < 0.70:
            addrs.append(rng.choice(probe))
        elif roll < 0.85:
            base = rng.randrange(miss_lines) * 64
            addrs.extend(0x800000 + base + i * 64
                         for i in range(rng.randrange(1, 16)))
        else:
            addrs.append(rng.randrange(0, 1 << 24) & ~0x3F)
    return probe, addrs[:count]


def _run_cache_stream(config, backend, seed, *, writes=True, probes=True):
    rng = random.Random(seed)
    system = System(config)
    probe, addrs = _mixed_stream(rng, 3000)
    hierarchy = system.hierarchy
    hierarchy.access_batch(0, probe, 0, requestor="warm", backend="scalar")
    finish = hierarchy.access_batch(0, addrs, 10_000, pc=17,
                                    requestor="recv", backend=backend)
    if writes:
        finish = hierarchy.access_batch(0, addrs[: len(addrs) // 2], finish,
                                        is_write=True, requestor="send",
                                        backend=backend)
    latencies = None
    if probes:
        finish, latencies = hierarchy.probe_batch(
            0, addrs[: len(addrs) // 3], finish, requestor="recv",
            backend=backend)
    return finish, latencies, _full_state(system)


# ----------------------------------------------------------------------
# Cache engine equivalence
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("prefetchers", [True, False])
def test_vector_matches_scalar_randomized(seed, prefetchers):
    config = _config(prefetchers=prefetchers)
    scalar = _run_cache_stream(config, "scalar", seed)
    vectorized = _run_cache_stream(config, "vector", seed)
    assert vectorized[0] == scalar[0]
    assert vectorized[1] == scalar[1]
    assert vectorized[2] == scalar[2]


@pytest.mark.parametrize("replacement", ["lru", "srrip", "random"])
def test_vector_matches_scalar_per_policy(replacement):
    config = _config(prefetchers=False, replacement=replacement)
    # RandomPolicy draws from the global RNG on misses; reseed per run so
    # both backends see the same victim sequence.
    random.seed(99)
    scalar = _run_cache_stream(config, "scalar", 7)
    random.seed(99)
    vectorized = _run_cache_stream(config, "vector", 7)
    assert vectorized == scalar


def test_auto_backend_matches_scalar():
    config = _config()
    assert (_run_cache_stream(config, "auto", 5)
            == _run_cache_stream(config, "scalar", 5))


def test_small_batches_and_generators_still_work():
    config = _config()
    system = System(config)
    small = [i * 64 for i in range(8)]
    finish = system.hierarchy.access_batch(0, iter(small), 0,
                                           backend="vector")
    twin = System(config)
    assert finish == twin.hierarchy.access_batch(0, small, 0,
                                                 backend="scalar")


def test_probe_many_and_load_many_backend_passthrough():
    def run(backend):
        system = System(_config(prefetchers=False))
        ctx = type("Ctx", (), {
            "now": 0, "name": "cpu",
            "advance_to": lambda self, t: setattr(self, "now", t),
        })()
        probe = [0x100000 + i * 64 for i in range(128)]
        system.load_many(ctx, 0, probe, backend=backend)
        replay = [probe[(i * 7) % 128] for i in range(2000)]
        lats = system.probe_many(ctx, 0, replay, backend=backend)
        return ctx.now, lats, _full_state(system)

    assert run("vector") == run("scalar")


# ----------------------------------------------------------------------
# Gating: observers, sanitizer, kill switch
# ----------------------------------------------------------------------


def test_sanitized_runs_stay_bit_identical(monkeypatch):
    plain = _run_cache_stream(_config(), "vector", 11)
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sanitized = _run_cache_stream(_config(), "vector", 11)
    assert sanitized == plain


def test_observer_falls_back_on_auto_but_raises_when_explicit():
    system = System(_config(), sanitize=True)
    obs = system.hierarchy._obs
    assert obs is not None
    # Auto silently falls back to the reference loop...
    assert vector.resolve_backend(None, 10_000, obs) == "scalar"
    # ...but an *explicit* vector request with an observer attached is a
    # configuration error and says so (PR 7 gating-asymmetry fix).  The
    # environment-level downgrades outrank it: under the kill switch or
    # REPRO_SANITIZE the explicit request silently runs scalar instead
    # (sanitized runs attach an observer to *every* system, so raising
    # would break every backend="vector" call site in sanitize CI).
    probe = [0x100000 + i * 64 for i in range(64)]
    if vector.vector_killed() or vector.sanitize_requested():
        assert vector.resolve_backend("vector", 10_000, obs) == "scalar"
    else:
        with pytest.raises(RuntimeError, match="observer attached"):
            vector.resolve_backend("vector", 10_000, obs)
        with pytest.raises(RuntimeError, match="set_observer"):
            system.hierarchy.access_batch(0, probe, 0, backend="vector")
    # Detaching the observer or passing backend="scalar" both work.
    finish = system.hierarchy.access_batch(0, probe, 0, backend="scalar")
    twin = System(_config())
    assert finish == twin.hierarchy.access_batch(0, probe, 0,
                                                 backend="scalar")


def test_explicit_vector_without_numpy_raises(monkeypatch):
    monkeypatch.setattr(vector, "np", None)
    monkeypatch.setattr(vector, "_NUMPY_ERROR",
                        "repro.sim.vector needs numpy>=1.24 (test stub)")
    with pytest.raises(RuntimeError, match="needs numpy"):
        vector.resolve_backend("vector", 10_000, None)
    # Auto quietly degrades to the scalar reference loop instead.
    assert vector.resolve_backend(None, 10_000, None) == "scalar"


def test_kill_switch_disables_vector(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    monkeypatch.setenv("REPRO_NO_VECTOR", "1")
    assert vector.resolve_backend(None, 10_000, None) == "scalar"
    assert vector.resolve_backend("vector", 10_000, None) == "scalar"
    monkeypatch.setenv("REPRO_NO_VECTOR", "0")
    assert vector.resolve_backend(None, 10_000, None) == "vector"


def test_auto_threshold_and_unknown_backend(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    monkeypatch.delenv("REPRO_NO_VECTOR", raising=False)
    assert vector.resolve_backend(None, vector.MIN_VECTOR_BATCH - 1,
                                  None) == "scalar"
    assert vector.resolve_backend(None, vector.MIN_VECTOR_BATCH,
                                  None) == "vector"
    with pytest.raises(ValueError, match="unknown backend"):
        vector.resolve_backend("simd", 1000, None)


def test_numpy_requirement_reports_clearly():
    # numpy is present in this run (module-level skip otherwise), so the
    # guard passes; the message string is what a missing/old install sees.
    vector.require_numpy()
    assert vector.numpy_available()
    assert vector.numpy_error() is None


# ----------------------------------------------------------------------
# Snapshot / warm-store round-trips
# ----------------------------------------------------------------------


def test_snapshot_restore_replay_is_backend_agnostic():
    config = _config()
    system = System(config)
    rng = random.Random(3)
    probe, addrs = _mixed_stream(rng, 2500)
    system.hierarchy.access_batch(0, probe, 0, backend="vector")
    snap = system.snapshot()

    results = {}
    for backend in ("scalar", "vector"):
        fresh = System(config)
        fresh.restore(snap)
        finish = fresh.hierarchy.access_batch(0, addrs, 5000,
                                              backend=backend)
        results[backend] = (finish, _full_state(fresh))
    assert results["vector"] == results["scalar"]


def test_warm_store_round_trip_replay(tmp_path):
    config = _config()
    warm = System(config)
    rng = random.Random(4)
    probe, addrs = _mixed_stream(rng, 2000)
    warm.hierarchy.access_batch(0, probe, 0, backend="vector")

    store = WarmStore(str(tmp_path), version="v-test")
    store.store_snapshot(warm.snapshot(), recipe=("vector-test",))
    loaded = WarmStore(str(tmp_path), version="v-test").load_snapshot(
        config, ("vector-test",))
    assert loaded is not None

    results = {}
    for backend in ("scalar", "vector"):
        fresh = System(config)
        fresh.restore(loaded)
        finish = fresh.hierarchy.access_batch(0, addrs, 5000,
                                              backend=backend)
        results[backend] = (finish, _full_state(fresh))
    assert results["vector"] == results["scalar"]


def test_restore_invalidates_tag_mirror():
    system = System(_config())
    l1 = system.hierarchy.l1[0]
    probe = [0x100000 + i * 64 for i in range(128)]
    system.hierarchy.access_batch(0, probe, 0, backend="vector")
    mirror_before = l1.tag_matrix().copy()
    snap = system.snapshot()
    system.hierarchy.access_batch(
        0, [0x900000 + i * 64 for i in range(512)], 0, backend="scalar")
    system.restore(snap)
    rebuilt = l1.tag_matrix()
    assert (rebuilt == mirror_before).all()
    assert rebuilt.tolist() == [list(row) for row in l1._tags]


# ----------------------------------------------------------------------
# DRAM run engine
# ----------------------------------------------------------------------


def _dram_state(system):
    return (
        [(b.open_row, b.busy_until, b.row_opened_at, b.last_activation)
         for b in system.controller.device.banks],
        {name: _statsdict(stats)
         for name, stats in system.controller.requestor_stats.items()},
    )


def _run_dram_stream(config, backend, seed, *, writes=True):
    rng = random.Random(seed)
    system = System(config)
    cap = config.geometry.capacity_bytes
    addrs = [rng.randrange(0, cap // 8) & ~0x3F for _ in range(1500)]
    base = 0x40000
    addrs += [base + (i % 32) * 64 for i in range(400)]  # same-row runs
    finish, lats = system.controller.access_run(
        addrs, 1000, requestor="recv", collect_latencies=True,
        backend=backend)
    if writes:
        finish, more = system.controller.access_run(
            addrs[:300], finish, requestor="send", is_write=True,
            collect_latencies=True, backend=backend)
        lats = lats + more
    return finish, lats, _dram_state(system)


@pytest.mark.parametrize("mapping", ["row", "line", "xor"])
@pytest.mark.parametrize("row_timeout_ns", [None, 120.0])
def test_dram_run_matches_scalar(mapping, row_timeout_ns):
    config = _config(mapping=mapping, row_timeout_ns=row_timeout_ns)
    assert (_run_dram_stream(config, "vector", 8)
            == _run_dram_stream(config, "scalar", 8))


def test_dram_run_with_refresh_matches_chained_access_calls():
    # Refresh windows *split* vectorized runs (PR 7): the clean prefix
    # commits in bulk and each boundary element takes the reference path,
    # which applies the window — the result must match a hand-chained
    # access loop exactly, including every refresh-lengthened latency.
    config = _config(refresh=True)
    system = System(config)
    addrs = [0x40000 + (i % 64) * 64 for i in range(500)]
    finish, lats = system.controller.access_run(
        addrs, 1000, requestor="cpu", collect_latencies=True,
        backend="vector")
    twin = System(config)
    now = 1000
    expect = []
    for addr in addrs:
        result = twin.controller.access(addr, now, requestor="cpu")
        expect.append(result.latency)
        now = result.finish
    assert finish == now
    assert lats == expect
    assert _dram_state(system) == _dram_state(twin)


def test_dram_run_matches_chained_access_calls():
    config = _config()
    system = System(config)
    rng = random.Random(12)
    cap = config.geometry.capacity_bytes
    addrs = [rng.randrange(0, cap // 16) & ~0x3F for _ in range(800)]
    finish, lats = system.controller.access_run(
        addrs, 500, requestor="cpu", collect_latencies=True,
        backend="vector")
    twin = System(config)
    now = 500
    expect = []
    for addr in addrs:
        result = twin.controller.access(addr, now, requestor="cpu")
        expect.append(result.latency)
        now = result.finish
    assert (finish, lats) == (now, expect)
    assert _dram_state(system) == _dram_state(twin)


def test_dram_run_rejects_bad_addresses_like_scalar():
    config = _config()
    bad = [64, 128, config.geometry.capacity_bytes + 64]
    errors = {}
    for backend in ("scalar", "vector"):
        system = System(config)
        with pytest.raises(ValueError) as excinfo:
            system.controller.access_run(bad, 0, backend=backend)
        errors[backend] = str(excinfo.value)
    assert errors["vector"] == errors["scalar"]


# ----------------------------------------------------------------------
# Vectorized address decode
# ----------------------------------------------------------------------


@pytest.mark.parametrize("mapping", ["row", "line", "xor"])
def test_decode_banks_rows_matches_scalar_decode(mapping):
    np = pytest.importorskip("numpy")
    config = _config(mapping=mapping)
    mapper = System(config).controller.mapper
    rng = random.Random(21)
    addrs = [rng.randrange(0, config.geometry.capacity_bytes)
             for _ in range(4096)]
    banks, rows = mapper.decode_banks_rows(np.asarray(addrs, dtype=np.int64))
    for i, addr in enumerate(addrs):
        bank, row = mapper.decode_bank_row(addr)
        assert (banks[i], rows[i]) == (bank, row)
