"""Bit-identity tests for the vectorized miss path (PR 7).

The miss engine bulk-commits whole full-miss spans — LLC/L2/L1 fill
plans plus a grouped DRAM conflict run — so these tests drive the
shapes it specializes for (conflict-alternating replays, streaming
sweeps, mixed traffic) across replacement policies, address mappings,
and refresh, and require the vector backend to match the scalar
reference bit for bit: finish times, per-access latencies, and every
observable piece of cache/bank/stats state.

Everything here runs under ``REPRO_SANITIZE=1`` and
``REPRO_NO_VECTOR=1`` too: both env directives silently downgrade the
vector backend to the reference loop, so the comparisons become
trivially scalar-vs-scalar but still execute every call site.
"""

import dataclasses
import random

import pytest

from repro.config import SystemConfig
from repro.exp.warmstore import WarmStore
from repro.sim import vector
from repro.system import System

from tests.test_vector_engine import _config, _full_state

pytestmark = pytest.mark.skipif(
    not vector.numpy_available(),
    reason=f"numpy unavailable: {vector.numpy_error()}")


# ----------------------------------------------------------------------
# Stream generators: the miss-dominated shapes the engine targets
# ----------------------------------------------------------------------


def _conflict_replay(system, count):
    """Bank-conflict-alternating replay: adjacent accesses hit the same
    bank on different rows (the covert-channel sender/receiver shape),
    spread over sets so caches never filter them."""
    nb = system.num_banks
    addrs = []
    for i in range(count):
        bank = (i // 2) % nb
        col = (i // (2 * nb)) % 128
        pair = i // (2 * nb * 128)
        row = 2 * pair + (i & 1)
        addrs.append(system.address_of(bank, row % 4096, col * 64))
    return addrs


def _streaming_sweep(count, base=0x2000000):
    """Sequential line sweep, the fig11 streaming shape."""
    return [base + i * 64 for i in range(count)]


def _mixed_miss_stream(rng, system, count):
    """Conflict bursts + short-range reuse + sequential bursts, in
    random order — spans start and stop mid-chunk, hits interleave."""
    addrs = []
    i = 0
    nb = system.num_banks
    while len(addrs) < count:
        roll = rng.random()
        if roll < 0.45:
            for _ in range(rng.randrange(40, 200)):
                bank = (i // 2) % nb
                col = (i // (2 * nb)) % 128
                pair = i // (2 * nb * 128)
                row = 2 * pair + (i & 1)
                addrs.append(system.address_of(bank, row % 4096,
                                               (col % 128) * 64))
                i += 1
        elif roll < 0.70 and addrs:
            for _ in range(rng.randrange(20, 120)):
                addrs.append(rng.choice(addrs[-300:]))
        else:
            base = rng.randrange(0, 1 << 22) * 64
            addrs.extend(base + t * 64
                         for t in range(rng.randrange(30, 150)))
    return addrs[:count]


def _run_miss_stream(config, addrs, backend, *, write_chunks=False,
                     probes=None):
    """One full run: scalar warm prefix, chunked demand stream (with an
    optional alternating write chunk), then probe replays; returns the
    timing observables plus the complete end state."""
    system = System(config)
    hierarchy = system.hierarchy
    now = hierarchy.access_batch(0, addrs[:200], 0, requestor="recv",
                                 backend="scalar")
    step = 1500
    for chunk_index, start in enumerate(range(200, len(addrs), step)):
        chunk = addrs[start:start + step]
        is_write = write_chunks and chunk_index % 2 == 1
        now = hierarchy.access_batch(0, chunk, now, requestor="recv",
                                     backend=backend, is_write=is_write)
    latencies = None
    if probes:
        now, latencies = hierarchy.probe_batch(0, probes, now,
                                               requestor="recv",
                                               backend=backend)
    return now, latencies, _full_state(system)


# ----------------------------------------------------------------------
# Identity on the specialized shapes
# ----------------------------------------------------------------------


@pytest.mark.parametrize("replacement", ["lru", "srrip", "random"])
def test_conflict_replay_matches_scalar(replacement):
    config = _config(prefetchers=False, replacement=replacement)
    addrs = _conflict_replay(System(config), 12_000)
    probes = addrs[:2000]
    scalar = _run_miss_stream(config, addrs, "scalar", probes=probes)
    vectored = _run_miss_stream(config, addrs, "vector", probes=probes)
    assert scalar == vectored


@pytest.mark.parametrize("refresh", [False, True])
def test_streaming_sweep_matches_scalar(refresh):
    config = _config(prefetchers=False, refresh=refresh)
    addrs = _streaming_sweep(20_000)
    scalar = _run_miss_stream(config, addrs, "scalar")
    vectored = _run_miss_stream(config, addrs, "vector")
    assert scalar == vectored


@pytest.mark.parametrize("replacement,mapping,refresh", [
    ("lru", "row", False),
    ("lru", "xor", True),
    ("srrip", "line", False),
    ("srrip", "xor", True),
    ("random", "row", True),
    ("random", "line", False),
])
def test_mixed_miss_stream_matches_scalar(replacement, mapping, refresh):
    config = _config(prefetchers=False, replacement=replacement,
                     mapping=mapping, refresh=refresh)
    rng = random.Random(hash((replacement, mapping, refresh)) & 0xFFFF)
    addrs = _mixed_miss_stream(rng, System(config), 10_000)
    probes = [rng.choice(addrs) for _ in range(2000)]
    scalar = _run_miss_stream(config, addrs, "scalar",
                              write_chunks=True, probes=probes)
    vectored = _run_miss_stream(config, addrs, "vector",
                                write_chunks=True, probes=probes)
    assert scalar == vectored


def test_miss_spans_with_prefetchers_still_match():
    # Prefetchers make the miss engine ineligible — the batch must
    # detect that and stay on the reference loop, not commit bulk spans.
    config = _config(prefetchers=True)
    addrs = _streaming_sweep(6000)
    scalar = _run_miss_stream(config, addrs, "scalar")
    vectored = _run_miss_stream(config, addrs, "vector")
    assert scalar == vectored


# ----------------------------------------------------------------------
# Dirty-line accounting
# ----------------------------------------------------------------------


def _recount_dirty(cache):
    return sum(sum(1 for d in row if d) for row in cache._dirty)


def test_dirty_line_counter_tracks_ground_truth():
    """``_dirty_lines`` (the O(1) all-clean gate for the bulk miss
    path) must equal a recount of the dirty matrix at every batch
    boundary, through misses, writes, writebacks, and probes."""
    config = _config(prefetchers=False)
    system = System(config)
    hierarchy = system.hierarchy
    rng = random.Random(7)
    addrs = _mixed_miss_stream(rng, system, 6000)
    now = 0
    for start in range(0, len(addrs), 1000):
        chunk = addrs[start:start + 1000]
        is_write = (start // 1000) % 3 == 1
        now = hierarchy.access_batch(0, chunk, now, requestor="recv",
                                     backend="vector", is_write=is_write)
        for cache in [hierarchy.llc] + list(hierarchy.l1) + \
                list(hierarchy.l2):
            assert cache._dirty_lines == _recount_dirty(cache)


# ----------------------------------------------------------------------
# Snapshot / warm-store round-trips through miss-heavy state
# ----------------------------------------------------------------------


def test_snapshot_roundtrip_mid_conflict_stream():
    config = _config(prefetchers=False)
    addrs = _conflict_replay(System(config), 10_000)
    system = System(config)
    finish = system.hierarchy.access_batch(0, addrs[:5000], 0,
                                           requestor="recv",
                                           backend="vector")
    snap = system.snapshot()
    tails = {}
    for backend in ("scalar", "vector"):
        fresh = System(config)
        fresh.restore(snap)
        tail = fresh.hierarchy.access_batch(0, addrs[5000:], finish,
                                            requestor="recv",
                                            backend=backend)
        tails[backend] = (tail, _full_state(fresh))
    assert tails["scalar"] == tails["vector"]


def test_warm_store_roundtrip_mid_conflict_stream(tmp_path):
    config = _config(prefetchers=False)
    addrs = _conflict_replay(System(config), 8000)
    warm = System(config)
    finish = warm.hierarchy.access_batch(0, addrs[:4000], 0,
                                         requestor="recv",
                                         backend="vector")
    store = WarmStore(str(tmp_path), version="v-miss-test")
    store.store_snapshot(warm.snapshot(), recipe=("miss-test",))
    loaded = WarmStore(str(tmp_path), version="v-miss-test").load_snapshot(
        config, recipe=("miss-test",))
    assert loaded is not None
    tails = {}
    for backend in ("scalar", "vector"):
        fresh = System(config)
        fresh.restore(loaded)
        tail = fresh.hierarchy.access_batch(0, addrs[4000:], finish,
                                            requestor="recv",
                                            backend=backend)
        tails[backend] = (tail, _full_state(fresh))
    assert tails["scalar"] == tails["vector"]


def test_sanitized_system_runs_miss_stream_identically():
    """A sanitized system carries an observer, so the auto backend must
    quietly run the reference loop — and land on the same state as an
    unsanitized scalar run."""
    config = _config(prefetchers=False)
    addrs = _conflict_replay(System(config), 6000)
    sanitized = System(config, sanitize=True)
    finish_s = sanitized.hierarchy.access_batch(0, addrs, 0,
                                                requestor="recv")
    plain = System(config)
    finish_p = plain.hierarchy.access_batch(0, addrs, 0, requestor="recv",
                                            backend="scalar")
    assert finish_s == finish_p
    assert _full_state(sanitized) == _full_state(plain)
