"""Unit and integration tests for graph workloads and the Fig. 11 runner."""

import pytest

from repro import System, SystemConfig
from repro.cache import HierarchyConfig
from repro.dram import DRAMGeometry
from repro.workloads import (
    KERNELS,
    CSRGraph,
    bc_kernel,
    bfs_kernel,
    cc_kernel,
    evaluate_defenses,
    generate_graph,
    pagerank_kernel,
    run_multiprogrammed,
    tc_kernel,
    workload_spec,
)
from repro.workloads.kernels import Layout


def tiny_graph():
    return generate_graph(num_nodes=60, avg_degree=4, seed=1)


def tiny_system():
    return System(SystemConfig(
        geometry=DRAMGeometry(ranks=1, banks_per_rank=16, rows_per_bank=4096),
        hierarchy=HierarchyConfig(num_cores=2, llc_size_mb=2.0),
        num_cores=2))


# ---------------------------------------------------------------------------
# Graph generation
# ---------------------------------------------------------------------------

def test_graph_is_symmetric_and_sorted():
    g = tiny_graph()
    for u in range(g.num_nodes):
        neighbors = g.neighbors(u)
        assert list(neighbors) == sorted(neighbors)
        for v in neighbors:
            assert u in g.neighbors(v)


def test_graph_deterministic():
    a = generate_graph(100, 6, seed=3)
    b = generate_graph(100, 6, seed=3)
    assert a.edges == b.edges
    assert generate_graph(100, 6, seed=4).edges != a.edges


def test_graph_degree_near_target():
    g = generate_graph(400, avg_degree=8, seed=0)
    avg = g.num_edges / g.num_nodes
    assert 4 <= avg <= 10


def test_graph_validation():
    with pytest.raises(ValueError):
        generate_graph(1)
    with pytest.raises(ValueError):
        generate_graph(10, avg_degree=0)


# ---------------------------------------------------------------------------
# Kernels
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("kernel", [bfs_kernel, pagerank_kernel, cc_kernel,
                                    tc_kernel, bc_kernel])
def test_kernels_emit_valid_refs(kernel):
    layout = Layout()
    refs = list(kernel(tiny_graph(), layout))
    assert refs
    for ref in refs:
        assert ref.addr >= layout.offsets_base
        assert ref.compute_cycles >= 0
        assert isinstance(ref.is_write, bool)


def test_bfs_visits_whole_connected_graph():
    g = tiny_graph()
    refs = list(bfs_kernel(g, Layout()))
    # Ring seeding makes the graph connected: every node's record is read.
    data_addrs = {r.addr for r in refs if r.addr >= Layout().data_base}
    assert len(data_addrs) >= g.num_nodes - 1


def test_cc_terminates_with_writes():
    refs = list(cc_kernel(tiny_graph(), Layout()))
    assert any(r.is_write for r in refs)


def test_pagerank_streams_edges_in_order():
    layout = Layout()
    refs = [r for r in pagerank_kernel(tiny_graph(), layout)
            if layout.edges_base <= r.addr < layout.data_base]
    addrs = [r.addr for r in refs]
    assert addrs == sorted(addrs)


def test_specs_cover_paper_workloads():
    assert set(KERNELS) == {"BC", "BFS", "CC", "TC", "PR"}
    assert workload_spec("bfs").name == "BFS"
    with pytest.raises(ValueError):
        workload_spec("SSSP")


def test_spec_refs_truncation():
    spec = workload_spec("PR")
    refs = spec.refs(max_refs=100)
    assert len(refs) == 100


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------

def test_runner_replays_all_refs():
    system = tiny_system()
    stream = workload_spec("BC").refs(graph=tiny_graph(), max_refs=500)
    result = run_multiprogrammed(system, [stream, stream], warmup=False)
    assert result.refs == 1000
    assert result.cycles > 0
    assert result.instructions > result.refs


def test_runner_warmup_reduces_misses():
    stream = workload_spec("BC").refs(graph=tiny_graph(), max_refs=500)
    cold = run_multiprogrammed(tiny_system(), [stream, stream], warmup=False)
    warm = run_multiprogrammed(tiny_system(), [stream, stream], warmup=True)
    assert warm.llc_misses <= cold.llc_misses


def test_runner_rejects_too_many_streams():
    system = tiny_system()
    with pytest.raises(ValueError):
        run_multiprogrammed(system, [[], [], []])


def test_evaluate_defenses_fig11_shape():
    """CTD slows things at least as much as CRP; both >= ~0 (small graphs
    here; the bench reproduces the full figure)."""
    ev = evaluate_defenses("PR", max_refs=4000)
    assert set(ev.results) == {"open", "crp", "ctd"}
    crp, ctd = ev.overhead("crp"), ev.overhead("ctd")
    assert ctd >= crp - 0.02
    assert ev.results["open"].cycles > 0
    row = ev.row()
    assert row["workload"] == "PR"


def test_mpki_metric():
    from repro.workloads import RunResult
    r = RunResult(cycles=1000, instructions=10_000, refs=1000, llc_misses=50)
    assert r.mpki == 5.0
    assert r.ipc == 10.0
