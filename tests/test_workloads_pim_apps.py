"""Tests for PEI-offloaded PageRank and the async PEI issue path."""

import pytest

from repro import System, SystemConfig
from repro.cache import HierarchyConfig
from repro.dram import DRAMGeometry
from repro.pim import ExecutionSite
from repro.sim import Scheduler
from repro.workloads import generate_graph
from repro.workloads.kernels import Layout
from repro.workloads.pim_apps import PimAppResult, pei_speedup, run_pagerank


def small_llc_config():
    """Rank array (768 KB) >> LLC (256 KB): the PEI-favourable regime."""
    return SystemConfig(
        geometry=DRAMGeometry(ranks=1, banks_per_rank=64,
                              rows_per_bank=65536),
        hierarchy=HierarchyConfig(num_cores=2, llc_size_mb=0.25,
                                  l2_size_kb=64),
        num_cores=2)


GRAPH = generate_graph(1500, avg_degree=8, seed=2)
LAYOUT = Layout(node_bytes=256, edge_bytes=16)


# ---------------------------------------------------------------------------
# Async PEI issue
# ---------------------------------------------------------------------------

def test_async_pei_costs_only_issue_slot():
    system = System(small_llc_config())
    addr = system.address_of(bank=3, row=9)

    def body(ctx, sys_):
        t0 = ctx.now
        result = sys_.pei_op_async(ctx, addr)
        issue_cost = ctx.now - t0
        yield None
        return issue_cost, result, tuple(ctx.pending_completions)

    sched = Scheduler()
    thread = sched.spawn(body, system)
    sched.run()
    issue_cost, result, pending = thread.result
    assert issue_cost == system.config.pei.issue_cycles
    assert result.site is ExecutionSite.MEMORY
    assert pending == (result.finish,)


def test_async_pei_fence_waits_for_completion():
    system = System(small_llc_config())
    addrs = [system.address_of(bank=b, row=9) for b in range(8)]

    def body(ctx, sys_):
        results = [sys_.pei_op_async(ctx, addr) for addr in addrs]
        issue_done = ctx.now
        ctx.fence()
        yield None
        return issue_done, ctx.now, max(r.finish for r in results)

    sched = Scheduler()
    thread = sched.spawn(body, system)
    sched.run()
    issue_done, fenced, last_finish = thread.result
    assert issue_done < last_finish
    assert fenced == last_finish


def test_async_pei_overlaps_across_banks():
    """Eight fire-and-forget PEIs to eight banks complete in roughly one
    DRAM access, not eight."""
    system = System(small_llc_config())
    addrs = [system.address_of(bank=b, row=9) for b in range(8)]

    def body(ctx, sys_):
        t0 = ctx.now
        for addr in addrs:
            sys_.pei_op_async(ctx, addr)
        ctx.fence()
        yield None
        return ctx.now - t0

    sched = Scheduler()
    thread = sched.spawn(body, system)
    sched.run()
    single = system.config.pei.network_cycles * 2 + 150
    assert thread.result < 2 * single


# ---------------------------------------------------------------------------
# PageRank host vs PEI
# ---------------------------------------------------------------------------

def test_pagerank_pei_beats_host_on_low_locality():
    """The PEI premise [67]: offloaded gathers win when the rank array
    overwhelms the caches."""
    host = run_pagerank(System(small_llc_config()), GRAPH, LAYOUT,
                        mode="host")
    pei = run_pagerank(System(small_llc_config()), GRAPH, LAYOUT, mode="pei")
    assert pei.edges_processed == host.edges_processed
    assert pei_speedup(host, pei) > 1.3


def test_pagerank_pei_traffic_goes_to_memory_pcus():
    pei = run_pagerank(System(small_llc_config()), GRAPH, LAYOUT, mode="pei")
    assert pei.pei_memory_ops > 0.9 * pei.edges_processed
    # CSR streaming still uses the caches.
    assert pei.hierarchy_accesses > 0


def test_pagerank_host_mode_issues_no_peis():
    host = run_pagerank(System(small_llc_config()), GRAPH, LAYOUT,
                        mode="host")
    assert host.pei_memory_ops == 0
    assert host.pei_host_ops == 0


def test_pagerank_cache_friendly_regime_prefers_host():
    """With a rank array that fits in the LLC, the host's caches win —
    the PMU-side of the PEI trade-off."""
    config = SystemConfig(
        geometry=DRAMGeometry(ranks=1, banks_per_rank=64,
                              rows_per_bank=65536),
        hierarchy=HierarchyConfig(num_cores=2, llc_size_mb=8.0),
        num_cores=2)
    small_layout = Layout(node_bytes=32, edge_bytes=16)
    host = run_pagerank(System(config), GRAPH, small_layout, mode="host")
    pei = run_pagerank(System(config), GRAPH, small_layout, mode="pei")
    assert host.cycles_per_edge < pei.cycles_per_edge * 1.2


def test_pagerank_validation():
    system = System(small_llc_config())
    with pytest.raises(ValueError):
        run_pagerank(system, GRAPH, LAYOUT, mode="gpu")
    with pytest.raises(ValueError):
        run_pagerank(system, GRAPH, LAYOUT, iterations=0)


def test_result_metrics():
    r = PimAppResult(mode="host", cycles=100, edges_processed=50,
                     pei_memory_ops=0, pei_host_ops=0, hierarchy_accesses=10)
    assert r.cycles_per_edge == 2.0
    empty = PimAppResult(mode="host", cycles=0, edges_processed=0,
                         pei_memory_ops=0, pei_host_ops=0,
                         hierarchy_accesses=0)
    assert empty.cycles_per_edge == 0.0
    assert pei_speedup(r, empty) == 0.0
