"""Tests for memory-trace profiling and serialization."""

import pytest

from repro.dram import DRAMGeometry
from repro.workloads import (
    load_trace,
    profile_trace,
    save_trace,
    workload_spec,
)
from repro.workloads.kernels import MemoryRef

GEOM = DRAMGeometry(ranks=1, banks_per_rank=16, rows_per_bank=4096)


def sequential_refs(count, start=0, step=64, write_every=0):
    return [MemoryRef(addr=start + i * step,
                      is_write=bool(write_every and i % write_every == 0),
                      pc=0x400, compute_cycles=2)
            for i in range(count)]


def test_sequential_stream_has_high_row_locality():
    profile = profile_trace(sequential_refs(512), geometry=GEOM)
    assert profile.row_locality > 0.95
    assert profile.refs == 512
    assert profile.distinct_lines == 512


def test_row_stride_stream_has_zero_row_locality():
    # One access per row in one bank: every transition switches rows.
    stride = GEOM.row_bytes * GEOM.num_banks
    profile = profile_trace(sequential_refs(64, step=stride), geometry=GEOM)
    assert profile.row_locality == 0.0
    assert len(profile.bank_histogram) == 1


def test_bank_balance_metrics():
    balanced = profile_trace(sequential_refs(GEOM.num_banks,
                                             step=GEOM.row_bytes),
                             geometry=GEOM)
    assert balanced.bank_balance == 1.0
    skewed = profile_trace(sequential_refs(64, step=0), geometry=GEOM)
    assert skewed.bank_balance < 0.1


def test_write_fraction():
    profile = profile_trace(sequential_refs(100, write_every=2), geometry=GEOM)
    assert profile.write_fraction == pytest.approx(0.5)


def test_reuse_distance_of_cyclic_pattern():
    refs = sequential_refs(8) * 4  # cycle over 8 lines
    profile = profile_trace(refs, geometry=GEOM)
    assert profile.reuse_distance_p50 == 7  # 7 distinct lines in between
    assert profile.distinct_lines == 8


def test_no_reuse_reports_none():
    profile = profile_trace(sequential_refs(16), geometry=GEOM)
    assert profile.reuse_distance_p50 is None


def test_workload_profiles_match_their_design():
    """The Fig. 11 scaling rationale, audited: PR's stream carries more
    row locality than CC's pointer chasing."""
    pr = profile_trace(workload_spec("PR").refs(max_refs=4000), geometry=GEOM)
    cc = profile_trace(workload_spec("CC").refs(max_refs=4000), geometry=GEOM)
    assert pr.row_locality > cc.row_locality
    assert "refs" in pr.summary()


def test_trace_roundtrip(tmp_path):
    refs = sequential_refs(32, write_every=3)
    path = str(tmp_path / "trace.jsonl")
    assert save_trace(refs, path) == 32
    loaded = load_trace(path)
    assert loaded == refs


def test_trace_load_rejects_garbage(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"addr": 1}\n')
    with pytest.raises(ValueError):
        load_trace(str(path))


def test_trace_load_skips_blank_lines(tmp_path):
    refs = sequential_refs(4)
    path = tmp_path / "trace.jsonl"
    save_trace(refs, str(path))
    path.write_text(path.read_text() + "\n\n")
    assert load_trace(str(path)) == refs
